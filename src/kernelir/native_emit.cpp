// Bytecode -> specialized C++ translator for the native backend.
//
// The emitter walks the CompiledKernel instruction stream once and prints
// one C++ block per instruction, mirroring vm.cpp's semantics op for op:
// the same evaluation order, the same counter increments, the same error
// messages. Every operand field (register slots, lane counts, array
// offsets, immediates, flags) is printed as a literal, so the host
// compiler sees straight-line code over flat arrays with constant strides
// — the per-instruction dispatch and operand resolution the VM pays at
// run time all happens here, at emit time. Jumps become `goto L<n>;` with
// labels only at jump targets; each instruction body lives in its own
// braces so no goto crosses an initialization.
//
// Floating-point identity with the host-built backends is preserved by
// construction: arithmetic is emitted as the same double expressions the
// VM evaluates (single-precision rounding as a (double)(float)(...) cast),
// constants are reproduced bit-exactly from their IEEE-754 payloads, and
// the JIT compiles with -ffp-contract=off so the host compiler cannot
// fuse a*b+c into an fma the interpreter didn't perform.
//
// In SIMD mode (NativeEmitOptions::simd_width > 0) the unmasked FP ops
// are printed as explicit fixed-width vector expressions instead of
// unrolled scalars: lane-major slab regions flatten into chunks of the
// host vector width, and f32 rounding becomes an element-wise
// double->float->double __builtin_convertvector pair inside the vector
// body — the narrowing is pinned per element, so no compiler pass can
// re-associate it and every lane still rounds exactly like the VM.
// Masked ops, integer ops and copies keep their scalar emission.
#include <cinttypes>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "kernelir/compile.hpp"
#include "kernelir/native.hpp"

namespace gemmtune::ir {

namespace {

/// Escapes a string into a C++ string-literal body (quotes, backslashes,
/// and non-printable bytes as fixed-width octal so following characters
/// can't extend the escape).
std::string cstr(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (c >= 0x20 && c < 0x7f) {
      out += ch;
    } else {
      out += strf("\\%03o", c);
    }
  }
  out += '"';
  return out;
}

class Emitter {
 public:
  Emitter(const Kernel& k, const CompiledKernel& p, const NativeEmitOptions& o)
      : k_(k),
        p_(p),
        simd_(vectorizable_width(o.simd_width) ? o.simd_width : 0) {}

  std::string run() {
    collect_labels();
    collect_splat_elisions();
    collect_fusions();
    collect_vector_widths();
    prologue();
    for (std::size_t i = 0; i < p_.code.size(); ++i) {
      if (is_target_[i]) line(strf("L%zu:;", i));
      if (fused_skip_.count(i) != 0) continue;  // folded into the next insn
      const auto f = fused_.find(i);
      if (f != fused_.end()) {
        emit_fused(p_.code[f->second], p_.code[i]);
        continue;
      }
      emit_insn(p_.code[i], i);
    }
    // A well-formed program ends in Halt, but guard the fall-through.
    line("goto L_done;");
    epilogue();
    return std::move(out_);
  }

 private:
  // ---- small formatting helpers ---------------------------------------------

  void line(const std::string& s) {
    out_ += "  ";
    out_ += s;
    out_ += '\n';
  }
  void raw(const std::string& s) { out_ += s; }

  static std::string imm64(std::int64_t v) {
    return strf("%lldLL", static_cast<long long>(v));
  }
  static std::string u(std::int32_t r) { return strf("u[%d]", r); }
  static std::string vi_ptr(std::int32_t r) {
    return strf("(vi + %d * NI)", r);
  }
  static std::string vf_ptr(std::int32_t base) {
    return strf("(vf + %d * NI)", base);
  }
  /// Wraps an arithmetic result in the f32 storage round when `rnd`.
  static std::string rnd(bool on, const std::string& e) {
    return on ? "(double)(float)(" + e + ")" : "(" + e + ")";
  }

  /// `snprintf` into err + jump to the failure label. `fmt` is a literal
  /// (already escaped); `args` are pre-formatted C++ expressions.
  std::string fail_stmt(const std::string& fmt,
                        const std::vector<std::string>& args) {
    std::string s = "{ std::snprintf(err, (std::size_t)err_cap, " + fmt;
    for (const auto& a : args) s += ", " + a;
    s += "); goto L_fail; }";
    return s;
  }
  /// Failure with a fixed message (message passed as data, not format).
  std::string fail_msg(const std::string& msg) {
    return fail_stmt("\"%s\"", {cstr(msg)});
  }

  /// Built-in value as a C++ expression (uniform part; aux = fn*2 + dim).
  std::string builtin_expr(int fn_dim) const {
    const int dim = fn_dim & 1;
    const auto fn = static_cast<BuiltinFn>(fn_dim >> 1);
    switch (fn) {
      case BuiltinFn::GroupId:
        return dim == 0 ? "gx" : "gy";
      case BuiltinFn::LocalSize:
        return dim == 0 ? "LSX" : "LSY";
      case BuiltinFn::NumGroups:
        return dim == 0 ? "(global0 / LSX)" : "(global1 / LSY)";
      default:
        break;
    }
    fail("native emit: bad uniform builtin");
  }

  void collect_labels() {
    is_target_.assign(p_.code.size() + 1, false);
    for (const Insn& in : p_.code) {
      switch (in.op) {
        case Op::Jmp:
        case Op::JzU:
        case Op::JgeU:
        case Op::JNone:
        case Op::ForCheckV:
          check(in.imm >= 0 &&
                    in.imm <= static_cast<std::int64_t>(p_.code.size()),
                "native emit: jump target out of range");
          is_target_[static_cast<std::size_t>(in.imm)] = true;
          break;
        default:
          break;
      }
    }
  }

  /// Finds f-registers whose every writer is a SplatLaneP of identical
  /// shape (same copied-lane count w < register width dw) and that live
  /// inside the per-group zeroed slab prefix. Their upper lanes are zero
  /// at every program point — the memset establishes it and each write
  /// re-establishes it — so the per-write zero-fill only ever rewrites
  /// zeros and can be dropped. This matters: GEMM inner loops pair each
  /// FmaPP with a SplatLaneP into a wide accumulator-shaped register, and
  /// the dead zero stores otherwise dominate the splat's memory traffic.
  void collect_splat_elisions() {
    std::map<std::int32_t, std::pair<int, int>> shape;  // base -> (w, dw)
    std::set<std::int32_t> bad;
    for (const Insn& in : p_.code) {
      switch (in.op) {
        case Op::SplatLaneP: {
          const auto s = std::make_pair(static_cast<int>(in.lanes),
                                        static_cast<int>(in.b));
          const auto [it, fresh] = shape.emplace(in.dst, s);
          if (!fresh && it->second != s) bad.insert(in.dst);
          break;
        }
        // Every other way an f-register can be written disqualifies it.
        case Op::FConst:
        case Op::FArg:
        case Op::FMov:
        case Op::FSplat:
        case Op::FLane:
        case Op::FAdd:
        case Op::FSub:
        case Op::FMul:
        case Op::FMad:
        case Op::LoadG:
        case Op::LoadL:
        case Op::LoadP:
          bad.insert(in.dst);
          break;
        default:
          break;
      }
    }
    for (const auto& [base, s] : shape) {
      if (bad.count(base) != 0) continue;
      if (s.first >= s.second) continue;            // no fill to elide
      if (base + s.second > p_.n_vf_vars) continue;  // outside zeroed prefix
      splat_zero_elide_.insert(base);
    }
  }

  /// Appends the f-register bases instruction `in` reads.
  static void freg_reads(const Insn& in, std::vector<std::int32_t>* out) {
    switch (in.op) {
      case Op::FMov:
      case Op::FSplat:
      case Op::FLane:
        out->push_back(in.a);
        break;
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
        out->push_back(in.a);
        out->push_back(in.b);
        break;
      case Op::FMad:
        out->push_back(in.a);
        out->push_back(in.b);
        out->push_back(in.c);
        break;
      case Op::FmaPP:
      case Op::StoreG:
      case Op::StoreL:
      case Op::StoreP:
        out->push_back(in.c);
        break;
      default:
        break;
    }
  }

  /// Finds producer/consumer pairs whose intermediate register is dead —
  /// SplatLaneP feeding the adjacent FmaPP, and a local/private/global
  /// load feeding the adjacent local/private store. Registers are not
  /// observable (only buffers, counters and error text are), so when
  /// every read of the intermediate register is one of these adjacent
  /// consumers, the producer is folded into the consumer: the FmaPP
  /// broadcasts the splat source directly, and the load/store pair
  /// becomes one copy loop without the register round-trip. Fusing needs
  /// the consumer to not be a jump target (entering mid-pair would skip
  /// the producer). Cross-item hazards rule out same-array local copies:
  /// the VM completes every item's load before the first store, and the
  /// fused loop interleaves them, which only a shared overlapping range
  /// could observe (private slabs are per-item, globals are load-only
  /// here, and distinct arrays occupy disjoint slab ranges). SIMD mode
  /// only — the scalar emitter stays the reference PR 6 translation.
  void collect_fusions() {
    if (simd_ <= 0) return;
    std::map<std::int32_t, std::vector<std::size_t>> cand;
    for (std::size_t i = 0; i + 1 < p_.code.size(); ++i) {
      if (is_target_[i + 1]) continue;
      const Insn& a = p_.code[i];
      const Insn& b = p_.code[i + 1];
      if (a.op == Op::SplatLaneP && b.op == Op::FmaPP && b.c == a.dst &&
          (b.aux >> 3) == a.b && b.lanes <= a.lanes) {
        cand[a.dst].push_back(i);
        continue;
      }
      const bool a_load = a.op == Op::LoadL || a.op == Op::LoadP ||
                          (a.op == Op::LoadG && !(a.aux & kElemF32));
      const bool b_store = b.op == Op::StoreL || b.op == Op::StoreP;
      if (a_load && b_store && b.c == a.dst && b.lanes == a.lanes &&
          !(a.flags & kMasked) && !(b.flags & kMasked)) {
        const bool a_local = a.op == Op::LoadL;
        const bool b_local = b.op == Op::StoreL;
        if (a_local && b_local && a.a == b.a) continue;  // may overlap
        cand[a.dst].push_back(i);
      }
    }
    for (const auto& [reg, producers] : cand) {
      std::set<std::size_t> consumers;
      for (const std::size_t i : producers) consumers.insert(i + 1);
      bool dead = true;
      for (std::size_t j = 0; j < p_.code.size() && dead; ++j) {
        std::vector<std::int32_t> rs;
        freg_reads(p_.code[j], &rs);
        for (const std::int32_t r : rs)
          if (r == reg && consumers.count(j) == 0) {
            dead = false;
            break;
          }
      }
      if (!dead) continue;
      for (const std::size_t i : producers) {
        fused_skip_.insert(i);
        fused_[i + 1] = i;
      }
    }
  }

  /// True when a lane count can be a GCC vector width (power of two, up
  /// to 16 doubles — 128 bytes, which GCC synthesizes on any target).
  static bool vectorizable_width(int w) {
    return w == 2 || w == 4 || w == 8 || w == 16;
  }

  /// Collects the vector widths the SIMD emission will reference, so the
  /// prologue defines exactly those typedefs/helpers: the host chunk
  /// width for the flattened unmasked FP ops, plus each FmaPP register
  /// width (its lanes are processed as one vector per work-item), plus
  /// the lane counts of unmasked memory ops whose per-item copies become
  /// one vector load/store pair (f64 only for the global ops — the f32
  /// paths convert element widths and stay scalar).
  void collect_vector_widths() {
    if (simd_ <= 0) return;
    vwidths_.insert(simd_);
    for (const Insn& in : p_.code) {
      if (in.op == Op::SplatLaneP && vectorizable_width(in.b))
        vwidths_.insert(static_cast<int>(in.b));
      if (!vectorizable_width(in.lanes)) continue;
      switch (in.op) {
        case Op::FmaPP:
        case Op::SplatLaneP:
          vwidths_.insert(static_cast<int>(in.lanes));
          break;
        case Op::LoadL:
        case Op::StoreL:
        case Op::LoadP:
        case Op::StoreP:
          if (!(in.flags & kMasked))
            vwidths_.insert(static_cast<int>(in.lanes));
          break;
        case Op::LoadG:
          if (!(in.flags & kMasked) && !(in.aux & kElemF32))
            vwidths_.insert(static_cast<int>(in.lanes));
          break;
        default:
          break;
      }
    }
  }

  // ---- prologue / epilogue --------------------------------------------------

  void prologue() {
    raw(strf("// Generated by the gemmtune native backend (emitter v2, "
             "%s) for\n",
             simd_ > 0 ? strf("simd w=%d", simd_).c_str() : "scalar"));
    raw("// kernel '" + k_.name + "'. Mirrors kernelir/vm.cpp semantics.\n");
    raw("#include <cstddef>\n#include <cstdio>\n#include <cstring>\n\n");
    // Fixed-width vector lanes (GCC/Clang vector extensions). Loads and
    // stores go through memcpy so the slab pointers need no alignment;
    // rndN converts every lane double->float->double individually
    // (__builtin_convertvector is an element-wise IEEE conversion), which
    // is exactly the VM's (double)(float) rounding chain — no
    // re-association is possible because the narrowing is explicit per
    // element inside the vector body.
    if (!vwidths_.empty()) {
      raw("namespace {\n");
      for (const int vw : vwidths_) {
        raw(strf("typedef double vd%d __attribute__((vector_size(%d)));\n",
                 vw, 8 * vw));
        raw(strf("typedef float vs%d __attribute__((vector_size(%d)));\n",
                 vw, 4 * vw));
        raw(strf("inline vd%d ld%d(const double* p) "
                 "{ vd%d v; __builtin_memcpy(&v, p, sizeof v); return v; }\n",
                 vw, vw, vw));
        raw(strf("inline void st%d(double* p, vd%d v) "
                 "{ __builtin_memcpy(p, &v, sizeof v); }\n",
                 vw, vw));
        raw(strf("inline vd%d rnd%d(vd%d v) "
                 "{ return __builtin_convertvector("
                 "__builtin_convertvector(v, vs%d), vd%d); }\n",
                 vw, vw, vw, vw, vw));
        raw(strf("typedef long long vl%d __attribute__((vector_size(%d)));\n",
                 vw, 8 * vw));
        raw(strf("inline vl%d ldi%d(const long long* p) "
                 "{ vl%d v; __builtin_memcpy(&v, p, sizeof v); return v; }\n",
                 vw, vw, vw));
        raw(strf("inline void sti%d(long long* p, vl%d v) "
                 "{ __builtin_memcpy(p, &v, sizeof v); }\n",
                 vw, vw));
      }
      raw("}  // namespace\n\n");
    }
    // Bit-exact floating constant pool, materialized at dlopen time.
    if (!p_.fpool.empty()) {
      raw("namespace {\n");
      raw(strf("const unsigned long long kFpoolBits[%zu] = {\n",
               p_.fpool.size()));
      for (std::size_t i = 0; i < p_.fpool.size(); ++i) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &p_.fpool[i], sizeof bits);
        raw(strf("  0x%016" PRIx64 "ull,\n", bits));
      }
      raw("};\n");
      raw(strf("struct FpoolInit {\n  double v[%zu];\n"
               "  FpoolInit() { std::memcpy(v, kFpoolBits, sizeof v); }\n"
               "};\nconst FpoolInit kFpool;\n}  // namespace\n\n",
               p_.fpool.size()));
    }
    raw("extern \"C\" long long gemmtune_native_entry_v1(\n"
        "    long long group_begin, long long group_end,\n"
        "    long long global0, long long global1,\n"
        "    long long local0, long long local1,\n"
        "    double* const* arg_f64, float* const* arg_f32,\n"
        "    const long long* arg_elems, const long long* arg_i,\n"
        "    const double* arg_f,\n"
        "    unsigned long long* counters, char* err, long long err_cap)"
        " {\n");
    line("(void)global0; (void)global1; (void)local0; (void)local1;");
    line("(void)arg_f64; (void)arg_f32; (void)arg_elems; (void)arg_i;");
    line("(void)arg_f; (void)err; (void)err_cap;");
    // Geometry: bake the work-group shape when the kernel requires one
    // (the launch plan already validated local == reqd_local).
    if (k_.reqd_local[0] > 0) {
      line(strf("constexpr long long LSX = %lld, LSY = %lld;",
                static_cast<long long>(k_.reqd_local[0]),
                static_cast<long long>(k_.reqd_local[1])));
      line("constexpr long long NI = LSX * LSY;");
    } else {
      line("const long long LSX = local0, LSY = local1;");
      line("const long long NI = LSX * LSY;");
    }
    line("(void)LSY;");
    line("const long long ngx = global0 / LSX;");
    // Scratch slabs: the VM's register-file layout, heap-allocated once
    // per call and reused across the whole group range.
    line(strf("long long* const u = new long long[%d];",
              p_.n_u > 0 ? p_.n_u : 1));
    line(strf("long long* const vi = new long long[(std::size_t)(%d * NI)"
              " + 1];",
              p_.n_vi));
    line(strf("double* const vf = new double[(std::size_t)(%d * NI) + 1];",
              p_.n_vf));
    line(strf("double* const parr = new double[(std::size_t)(%lld * NI)"
              " + 1];",
              static_cast<long long>(p_.parr_doubles)));
    line(strf("double* const larr = new double[%lld];",
              static_cast<long long>(p_.larr_doubles) + 1));
    line("unsigned char* const mask = new unsigned char[(std::size_t)NI];");
    const int depth = p_.max_mask_depth > 0 ? p_.max_mask_depth : 1;
    line(strf("unsigned char* const mask_saved = "
              "new unsigned char[(std::size_t)(%d * NI)];",
              depth));
    line(strf("int mask_cond[%d] = {0};", depth));
    line(strf("long long mask_saved_active[%d] = {0};", depth));
    line("(void)mask_cond; (void)mask_saved_active; (void)mask_saved;");
    line("long long rc = 0;");
    line("unsigned long long c_flops = 0, c_mads = 0, c_gld = 0,"
         " c_gst = 0, c_lld = 0, c_lst = 0, c_bar = 0;");
    line("for (long long g = group_begin; g < group_end; ++g) {");
    line("  const long long gx = g % ngx; (void)gx;");
    line("  const long long gy = g / ngx; (void)gy;");
    // Per-group reset, exactly the VM's: all uniforms, the variable
    // prefixes of the vi/vf slabs, the whole private/local slabs, mask 1.
    line(strf("  std::memset(u, 0, sizeof(long long) * %d);",
              p_.n_u > 0 ? p_.n_u : 1));
    if (p_.n_vi_vars > 0)
      line(strf("  std::memset(vi, 0, sizeof(long long) * "
                "(std::size_t)(%d * NI));",
                p_.n_vi_vars));
    if (p_.n_vf_vars > 0)
      line(strf("  std::memset(vf, 0, sizeof(double) * "
                "(std::size_t)(%d * NI));",
                p_.n_vf_vars));
    if (p_.parr_doubles > 0)
      line(strf("  std::memset(parr, 0, sizeof(double) * "
                "(std::size_t)(%lld * NI));",
                static_cast<long long>(p_.parr_doubles)));
    if (p_.larr_doubles > 0)
      line(strf("  std::memset(larr, 0, sizeof(double) * %lld);",
                static_cast<long long>(p_.larr_doubles)));
    line("  std::memset(mask, 1, (std::size_t)NI);");
    line("  long long active = NI; (void)active;");
    line("  long long mask_depth = 0; (void)mask_depth;");
  }

  void epilogue() {
    line("L_done:;");
    line("}");  // group loop
    line("goto L_cleanup;");
    line("L_fail:;");
    line("rc = 1;");
    line("L_cleanup:;");
    line("counters[0] += c_flops; counters[1] += c_mads;");
    line("counters[2] += c_gld; counters[3] += c_gst;");
    line("counters[4] += c_lld; counters[5] += c_lst;");
    line("counters[6] += c_bar;");
    line("delete[] u; delete[] vi; delete[] vf; delete[] parr;");
    line("delete[] larr; delete[] mask; delete[] mask_saved;");
    line("return rc;");
    raw("}\n");
  }

  // ---- per-instruction translation ------------------------------------------

  /// Opens a `for (t ...)` over the work-items, with the mask test when
  /// the instruction honours divergence.
  std::string t_loop_open(bool masked) const {
    std::string s = "for (long long t = 0; t < NI; ++t) { ";
    if (masked) s += "if (!mask[t]) continue; ";
    return s;
  }

  void emit_insn(const Insn& in, std::size_t pc) {
    const bool masked = (in.flags & kMasked) != 0;
    const int w = in.lanes;
    switch (in.op) {
      case Op::Halt:
        line("goto L_done;");
        return;
      case Op::UConst:
        line(u(in.dst) + " = " + imm64(in.imm) + ";");
        return;
      case Op::UArg:
        line(u(in.dst) + strf(" = arg_i[%d];", in.a));
        return;
      case Op::UBuiltin:
        line(u(in.dst) + " = " + builtin_expr(in.aux) + ";");
        return;
      case Op::UAdd:
        line(u(in.dst) + " = " + u(in.a) + " + " + u(in.b) + ";");
        return;
      case Op::USub:
        line(u(in.dst) + " = " + u(in.a) + " - " + u(in.b) + ";");
        return;
      case Op::UMul:
        line(u(in.dst) + " = " + u(in.a) + " * " + u(in.b) + ";");
        return;
      case Op::UDiv:
      case Op::UMod: {
        const bool div = in.op == Op::UDiv;
        line("{ const long long d = " + u(in.b) + ";");
        line("  if (d == 0) " +
             fail_msg(div ? "interp: integer division by zero"
                          : "interp: integer modulo by zero"));
        line("  " + u(in.dst) + " = " + u(in.a) + (div ? " / d; }" : " % d; }"));
        return;
      }
      case Op::ULt:
        line(u(in.dst) + " = (" + u(in.a) + " < " + u(in.b) + ") ? 1 : 0;");
        return;
      case Op::UAnd:
        line(u(in.dst) + " = (" + u(in.a) + " != 0 && " + u(in.b) +
             " != 0) ? 1 : 0;");
        return;
      case Op::UMov:
        line(u(in.dst) + " = " + u(in.a) + ";");
        return;
      case Op::UStepCheck:
        line("if (" + u(in.a) + " <= 0) " + fail_msg("for: non-positive step"));
        return;
      case Op::VBuiltin: {
        const int dim = in.aux & 1;
        const auto fn = static_cast<BuiltinFn>(in.aux >> 1);
        std::string expr;
        if (fn == BuiltinFn::LocalId) {
          expr = dim == 0 ? "t % LSX" : "t / LSX";
        } else if (fn == BuiltinFn::GlobalId) {
          expr = dim == 0 ? "gx * LSX + t % LSX" : "gy * LSY + t / LSX";
        } else {
          expr = builtin_expr(in.aux);
        }
        line("{ long long* const dst = " + vi_ptr(in.dst) + ";");
        line("  " + t_loop_open(false) + "dst[t] = " + expr + "; } }");
        return;
      }
      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
      case Op::VLt:
      case Op::VAnd: {
        std::string xa, xb;
        line("{ long long* const dst = " + vi_ptr(in.dst) + ";");
        if (in.flags & kAUni) {
          line("  const long long xa = " + u(in.a) + ";");
          xa = "xa";
        } else {
          line("  const long long* const pa = " + vi_ptr(in.a) + ";");
          xa = "pa[t]";
        }
        if (in.flags & kBUni) {
          line("  const long long xb = " + u(in.b) + ";");
          xb = "xb";
        } else {
          line("  const long long* const pb = " + vi_ptr(in.b) + ";");
          xb = "pb[t]";
        }
        std::string expr;
        switch (in.op) {
          case Op::VAdd: expr = xa + " + " + xb; break;
          case Op::VSub: expr = xa + " - " + xb; break;
          case Op::VMul: expr = xa + " * " + xb; break;
          case Op::VLt: expr = "(" + xa + " < " + xb + ") ? 1 : 0"; break;
          default:
            expr = "(" + xa + " != 0 && " + xb + " != 0) ? 1 : 0";
            break;
        }
        if (simd_ > 0) {
          // Explicit vectors: integer lane arithmetic is exact, and vector
          // compares yield 0/-1 per lane, masked down to the 0/1 the
          // scalar ?: forms produce. Uniform operands splat once.
          const std::string va =
              (in.flags & kAUni) ? "uva" : strf("ldi%d(pa + t)", simd_);
          const std::string vb =
              (in.flags & kBUni) ? "uvb" : strf("ldi%d(pb + t)", simd_);
          std::string vexpr;
          switch (in.op) {
            case Op::VAdd: vexpr = va + " + " + vb; break;
            case Op::VSub: vexpr = va + " - " + vb; break;
            case Op::VMul: vexpr = va + " * " + vb; break;
            case Op::VLt: vexpr = "((" + va + " < " + vb + ") & 1)"; break;
            default:
              vexpr = "(((" + va + " != 0) & (" + vb + " != 0)) & 1)";
              break;
          }
          if (in.flags & kAUni)
            line(strf("  const vl%d uva = ", simd_) +
                 splat_list("xa", simd_) + ";");
          if (in.flags & kBUni)
            line(strf("  const vl%d uvb = ", simd_) +
                 splat_list("xb", simd_) + ";");
          line("  long long t = 0;");
          line(strf("  for (; t + %d <= NI; t += %d) sti%d(dst + t, ", simd_,
                    simd_, simd_) +
               vexpr + ");");
          line("  for (; t < NI; ++t) dst[t] = " + expr + ";");
          line("}");
          return;
        }
        line("  " + t_loop_open(false) + "dst[t] = " + expr + "; } }");
        return;
      }
      case Op::VDiv:
      case Op::VMod: {
        const bool div = in.op == Op::VDiv;
        std::string xa, xb;
        line("{ long long* const dst = " + vi_ptr(in.dst) + ";");
        if (in.flags & kAUni) {
          line("  const long long xa = " + u(in.a) + ";");
          xa = "xa";
        } else {
          line("  const long long* const pa = " + vi_ptr(in.a) + ";");
          xa = "pa[t]";
        }
        if (in.flags & kBUni) {
          line("  const long long xb = " + u(in.b) + ";");
          xb = "xb";
        } else {
          line("  const long long* const pb = " + vi_ptr(in.b) + ";");
          xb = "pb[t]";
        }
        line("  " + t_loop_open(masked));
        line("    const long long y = " + xb + ";");
        line("    if (y == 0) " +
             fail_msg(div ? "interp: integer division by zero"
                          : "interp: integer modulo by zero"));
        line("    dst[t] = " + xa + (div ? " / y; } }" : " % y; } }"));
        return;
      }
      case Op::VMovU:
        line("{ long long* const dst = " + vi_ptr(in.dst) + ";");
        line("  const long long v = " + u(in.a) + ";");
        if (simd_ > 0 && !masked) {
          line(strf("  const vl%d vv = ", simd_) + splat_list("v", simd_) +
               ";");
          line("  long long t = 0;");
          line(strf("  for (; t + %d <= NI; t += %d) sti%d(dst + t, vv);",
                    simd_, simd_, simd_));
          line("  for (; t < NI; ++t) dst[t] = v;");
          line("}");
          return;
        }
        line("  " + t_loop_open(masked) + "dst[t] = v; } }");
        return;
      case Op::VMov:
        line("{ long long* const dst = " + vi_ptr(in.dst) + ";");
        line("  const long long* const src = " + vi_ptr(in.a) + ";");
        if (simd_ > 0 && !masked) {
          // A register-to-register move is one contiguous slab copy.
          line("  __builtin_memcpy(dst, src, sizeof(long long) * "
               "(std::size_t)NI);");
          line("}");
          return;
        }
        line("  " + t_loop_open(masked) + "dst[t] = src[t]; } }");
        return;
      case Op::FConst: {
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  " + t_loop_open(false));
        for (int l = 0; l < w; ++l)
          line(strf("    dst[t * %d + %d] = kFpool.v[%lld];", w, l,
                    static_cast<long long>(in.imm) + l));
        line("  } }");
        return;
      }
      case Op::FArg: {
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line(strf("  double x = arg_f[%d];", in.a));
        if (in.aux & kRoundF32) line("  x = (double)(float)x;");
        line("  " + t_loop_open(false));
        line(strf("    dst[t * %d] = x;", w));
        for (int l = 1; l < w; ++l)
          line(strf("    dst[t * %d + %d] = 0.0;", w, l));
        line("  } }");
        return;
      }
      case Op::FMov: {
        const int dw = in.b, sw = in.c, n = in.lanes;
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  const double* const src = " + vf_ptr(in.a) + ";");
        if (simd_ > 0 && !masked && n == dw && n == sw) {
          // Full-width register move: one contiguous slab copy.
          line(strf("  __builtin_memcpy(dst, src, sizeof(double) * "
                    "(std::size_t)(%d * NI));",
                    n));
          line("}");
          return;
        }
        line("  " + t_loop_open(masked));
        for (int l = 0; l < n; ++l)
          line(strf("    dst[t * %d + %d] = src[t * %d + %d];", dw, l, sw, l));
        for (int l = n; l < dw; ++l)
          line(strf("    dst[t * %d + %d] = 0.0;", dw, l));
        line("  } }");
        return;
      }
      case Op::FSplat: {
        const int sw = in.aux;
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  const double* const src = " + vf_ptr(in.a) + ";");
        line("  " + t_loop_open(false));
        line(strf("    const double x = src[t * %d];", sw));
        for (int l = 0; l < w; ++l)
          line(strf("    dst[t * %d + %d] = x;", w, l));
        line("  } }");
        return;
      }
      case Op::FLane: {
        const int sw = in.aux;
        const auto ln = static_cast<int>(in.imm);
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  const double* const src = " + vf_ptr(in.a) + ";");
        if (ln < sw) {
          line("  " + t_loop_open(false) +
               strf("dst[t] = src[t * %d + %d]; } }", sw, ln));
        } else {
          line("  (void)src;");
          line("  " + t_loop_open(false) + "dst[t] = 0.0; } }");
        }
        return;
      }
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul: {
        const bool f32 = (in.aux & kRoundF32) != 0;
        const char* op = in.op == Op::FAdd ? "+" : in.op == Op::FSub ? "-"
                                                                     : "*";
        if (simd_ > 0 && !masked) {
          // Lane-wise over the whole register slab: lanes of consecutive
          // work-items are contiguous (vf[base*NI + t*w + l]), so the
          // t/l loops flatten into one run of w*NI doubles chunked at
          // the host vector width with a scalar tail.
          line("{ double* const dst = " + vf_ptr(in.dst) + ";");
          line("  const double* const a = " + vf_ptr(in.a) + ";");
          line("  const double* const b = " + vf_ptr(in.b) + ";");
          line(strf("  const long long ne = (long long)%d * NI;", w));
          line("  long long i = 0;");
          line(strf("  for (; i + %d <= ne; i += %d) {", simd_, simd_));
          const std::string ve =
              strf("ld%d(a + i) %s ld%d(b + i)", simd_, op, simd_);
          line(strf("    st%d(dst + i, ", simd_) +
               (f32 ? strf("rnd%d(", simd_) + ve + ")" : ve) + ");");
          line("  }");
          line("  for (; i < ne; ++i) dst[i] = " +
               rnd(f32, strf("a[i] %s b[i]", op)) + ";");
          line(strf("  c_flops += (unsigned long long)(%d * NI);", w));
          line("}");
          return;
        }
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  const double* const a = " + vf_ptr(in.a) + ";");
        line("  const double* const b = " + vf_ptr(in.b) + ";");
        line("  " + t_loop_open(masked));
        for (int l = 0; l < w; ++l) {
          const std::string e = strf("a[t * %d + %d] %s b[t * %d + %d]", w, l,
                                     op, w, l);
          line(strf("    dst[t * %d + %d] = ", w, l) + rnd(f32, e) + ";");
        }
        if (masked) line(strf("    c_flops += %d;", w));
        line("  }");
        if (!masked)
          line(strf("  c_flops += (unsigned long long)(%d * NI);", w));
        line("}");
        return;
      }
      case Op::FMad: {
        const bool f32 = (in.aux & kRoundF32) != 0;
        if (simd_ > 0 && !masked) {
          line("{ double* const dst = " + vf_ptr(in.dst) + ";");
          line("  const double* const a = " + vf_ptr(in.a) + ";");
          line("  const double* const b = " + vf_ptr(in.b) + ";");
          line("  const double* const c = " + vf_ptr(in.c) + ";");
          line(strf("  const long long ne = (long long)%d * NI;", w));
          line("  long long i = 0;");
          line(strf("  for (; i + %d <= ne; i += %d) {", simd_, simd_));
          const std::string ve =
              strf("ld%d(a + i) * ld%d(b + i) + ld%d(c + i)", simd_, simd_,
                   simd_);
          line(strf("    st%d(dst + i, ", simd_) +
               (f32 ? strf("rnd%d(", simd_) + ve + ")" : ve) + ");");
          line("  }");
          line("  for (; i < ne; ++i) dst[i] = " +
               rnd(f32, "a[i] * b[i] + c[i]") + ";");
          line(strf("  c_flops += (unsigned long long)(%d * NI); "
                    "c_mads += (unsigned long long)NI;",
                    2 * w));
          line("}");
          return;
        }
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  const double* const a = " + vf_ptr(in.a) + ";");
        line("  const double* const b = " + vf_ptr(in.b) + ";");
        line("  const double* const c = " + vf_ptr(in.c) + ";");
        line("  " + t_loop_open(masked));
        for (int l = 0; l < w; ++l) {
          const std::string e =
              strf("a[t * %d + %d] * b[t * %d + %d] + c[t * %d + %d]", w, l, w,
                   l, w, l);
          line(strf("    dst[t * %d + %d] = ", w, l) + rnd(f32, e) + ";");
        }
        if (masked) line(strf("    c_flops += %d; ++c_mads;", 2 * w));
        line("  }");
        if (!masked)
          line(strf("  c_flops += (unsigned long long)(%d * NI); "
                    "c_mads += (unsigned long long)NI;",
                    2 * w));
        line("}");
        return;
      }
      case Op::FmaPP: {
        // Never masked (only fused inside uniform inner loops); see vm.cpp.
        const ArrayRef& cr = p_.arrays[static_cast<std::size_t>(in.a)];
        const ArrayRef& br = p_.arrays[static_cast<std::size_t>(in.b)];
        const bool f32 = (in.aux & kRoundF32) != 0;
        const int stride = in.aux >> 3;
        const long long coff = cr.offset + in.dst;
        const long long boff = br.offset + in.imm;
        line("{ const double* const av = " + vf_ptr(in.c) + ";");
        line("  " + t_loop_open(false));
        line(strf("    double* const pa = parr + t * %lld;",
                  static_cast<long long>(p_.parr_doubles)));
        line(strf("    double* const cp = pa + %lld;", coff));
        line(strf("    const double* const bp = pa + %lld;", boff));
        line(strf("    const double* const ap = av + t * %d;", stride));
        if (simd_ > 0 && vectorizable_width(w)) {
          // One vector per work-item: the register width is the vector
          // width, so the whole rank-1 update step is a single
          // load/fma-shaped/store sequence (unfused: contraction is off).
          const std::string ve =
              strf("ld%d(ap) * ld%d(bp) + ld%d(cp)", w, w, w);
          line(strf("    st%d(cp, ", w) +
               (f32 ? strf("rnd%d(", w) + ve + ")" : ve) + ");");
        } else {
          for (int l = 0; l < w; ++l) {
            const std::string e = strf("ap[%d] * bp[%d] + cp[%d]", l, l, l);
            line(strf("    cp[%d] = ", l) + rnd(f32, e) + ";");
          }
        }
        line("  }");
        line(strf("  c_flops += (unsigned long long)(%d * NI); "
                  "c_mads += (unsigned long long)NI;",
                  2 * w));
        line("}");
        return;
      }
      case Op::SplatLaneP: {
        const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(in.a)];
        const int dw = in.b;
        const long long off = ar.offset + in.imm;
        const bool elide = splat_zero_elide_.count(in.dst) != 0;
        line("{ double* const dst = " + vf_ptr(in.dst) + ";");
        line("  " + t_loop_open(false));
        line(strf("    const double x = parr[t * %lld + %lld];",
                  static_cast<long long>(p_.parr_doubles), off));
        if (simd_ > 0 && !elide && vectorizable_width(dw)) {
          // One full-width store covers the splat lanes and the zero fill.
          std::string init = "{";
          for (int l = 0; l < dw; ++l) {
            if (l) init += ", ";
            init += l < w ? "x" : "0.0";
          }
          line(strf("    const vd%d vx = ", dw) + init + "};");
          line(strf("    st%d(dst + t * %d, vx);", dw, dw));
        } else if (simd_ > 0 && vectorizable_width(w)) {
          line(strf("    const vd%d vx = ", w) + splat_list("x", w) + ";");
          line(strf("    st%d(dst + t * %d, vx);", w, dw));
          if (!elide)
            for (int l = w; l < dw; ++l)
              line(strf("    dst[t * %d + %d] = 0.0;", dw, l));
        } else {
          for (int l = 0; l < w; ++l)
            line(strf("    dst[t * %d + %d] = x;", dw, l));
          if (!elide)
            for (int l = w; l < dw; ++l)
              line(strf("    dst[t * %d + %d] = 0.0;", dw, l));
        }
        line("  } }");
        return;
      }
      case Op::LoadG:
      case Op::StoreG: {
        const bool is_store = in.op == Op::StoreG;
        const bool f32 = (in.aux & kElemF32) != 0;
        const int ebytes = f32 ? 4 : 8;
        line(strf("{ %s* const gp = %s[%d];", f32 ? "float" : "double",
                  f32 ? "arg_f32" : "arg_f64", in.a));
        line(strf("  const long long en = arg_elems[%d];", in.a));
        emit_addr(in);
        if (is_store) {
          line("  const double* const val = " + vf_ptr(in.c) + ";");
        } else {
          line("  double* const dst = " + vf_ptr(in.dst) + ";");
        }
        const std::string gfails =
            fail_stmt(cstr(strf("global %s out of range: index %%lld + %d "
                                "lanes, buffer %%lld elements",
                                is_store ? "store" : "load", w)),
                      {"(long long)idx", "(long long)en"});
        if (simd_ > 0 && !masked && !f32 && !is_store &&
            vectorizable_width(w)) {
          // SIMD form, f64 loads only: the destination is scratch, so the
          // hoisted check is invisible on the failure path. Stores stay
          // interleaved — a faulting launch must leave the user's buffer
          // with exactly the partial stores the VM would have done.
          emit_range_check(in, "en", gfails);
          line("  for (long long t = 0; t < NI; ++t) {");
          line("    const long long idx = " + addr_expr(in) + ";");
          line(strf("    st%d(dst + t * %d, ld%d(gp + idx));", w, w, w));
          line("  }");
          line(strf("  c_gld += (unsigned long long)(%d * NI);", w * ebytes));
          line("}");
          return;
        }
        line("  " + t_loop_open(masked));
        line("    const long long idx = " + addr_expr(in) + ";");
        line(strf("    if (idx < 0 || idx + %d > en) ", w) + gfails);
        for (int l = 0; l < w; ++l) {
          if (is_store) {
            line(f32 ? strf("    gp[idx + %d] = (float)val[t * %d + %d];", l,
                            w, l)
                     : strf("    gp[idx + %d] = val[t * %d + %d];", l, w, l));
          } else {
            line(f32 ? strf("    dst[t * %d + %d] = (double)gp[idx + %d];", w,
                            l, l)
                     : strf("    dst[t * %d + %d] = gp[idx + %d];", w, l, l));
          }
        }
        if (masked)
          line(strf("    %s += %d;", is_store ? "c_gst" : "c_gld",
                    w * ebytes));
        line("  }");
        if (!masked)
          line(strf("  %s += (unsigned long long)(%d * NI);",
                    is_store ? "c_gst" : "c_gld", w * ebytes));
        line("}");
        return;
      }
      case Op::LoadL:
      case Op::StoreL:
      case Op::LoadP:
      case Op::StoreP: {
        const bool is_store = in.op == Op::StoreL || in.op == Op::StoreP;
        const bool local = in.op == Op::LoadL || in.op == Op::StoreL;
        const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(in.a)];
        const int bytes = w * ((in.aux & kCount8) ? 8 : 4);
        line("{");
        emit_addr(in);
        if (is_store) {
          line("  const double* const val = " + vf_ptr(in.c) + ";");
        } else {
          line("  double* const dst = " + vf_ptr(in.dst) + ";");
        }
        const std::string fails = fail_stmt(
            cstr(strf("%s array '%%s' %s out of range: index %%lld + %d "
                      "lanes, %%zu elements",
                      local ? "local" : "private", is_store ? "store" : "load",
                      w)),
            {cstr(ar.name), "(long long)idx", strf("(std::size_t)%d", ar.len)});
        const std::string slab =
            local ? strf("larr + %d", ar.offset)
                  : strf("parr + t * %lld + %d",
                         static_cast<long long>(p_.parr_doubles), ar.offset);
        if (simd_ > 0 && !masked && vectorizable_width(w)) {
          // SIMD form: the bounds check is hoisted out of the copy loop
          // (constant/uniform addresses check once; varying addresses
          // OR-reduce, with an exact scalar re-scan on the failure path so
          // the first-faulting item's message matches the VM). The copies
          // target scratch slabs only, so the split is invisible: a failed
          // launch throws and every slab and counter dies with it. The
          // branch-free copy loop is then one vector load/store per item.
          emit_range_check(in, strf("%d", ar.len), fails);
          line("  for (long long t = 0; t < NI; ++t) {");
          line("    const long long idx = " + addr_expr(in) + ";");
          line(strf("    %s* const p = (%s) + idx;",
                    is_store ? "double" : "const double", slab.c_str()));
          if (is_store) {
            line(strf("    st%d((double*)p, ld%d(val + t * %d));", w, w, w));
          } else {
            line(strf("    st%d(dst + t * %d, ld%d(p));", w, w, w));
          }
          line("  }");
        } else {
          line("  " + t_loop_open(masked));
          line("    const long long idx = " + addr_expr(in) + ";");
          line(strf("    if (idx < 0 || idx + %d > %d) ", w, ar.len) + fails);
          line(strf("    %s* const p = (%s) + idx;",
                    is_store ? "double" : "const double", slab.c_str()));
          for (int l = 0; l < w; ++l) {
            if (is_store) {
              line(strf("    ((double*)p)[%d] = val[t * %d + %d];", l, w, l));
            } else {
              line(strf("    dst[t * %d + %d] = p[%d];", w, l, l));
            }
          }
          if (local && masked)
            line(strf("    %s += %d;", is_store ? "c_lst" : "c_lld", bytes));
          line("  }");
        }
        if (local && !masked)
          line(strf("  %s += (unsigned long long)(%d * NI);",
                    is_store ? "c_lst" : "c_lld", bytes));
        line("}");
        return;
      }
      case Op::Jmp:
        line(strf("goto L%lld;", static_cast<long long>(in.imm)));
        return;
      case Op::JzU:
        line("if (" + u(in.a) +
             strf(" == 0) goto L%lld;", static_cast<long long>(in.imm)));
        return;
      case Op::JgeU:
        line("if (" + u(in.a) + " >= " + u(in.b) +
             strf(") goto L%lld;", static_cast<long long>(in.imm)));
        return;
      case Op::JNone:
        line(strf("if (active == 0) goto L%lld;",
                  static_cast<long long>(in.imm)));
        return;
      case Op::ForCheckV: {
        line("{ const long long* const a = " + vi_ptr(in.a) + ";");
        line("  const long long* const b = " + vi_ptr(in.b) + ";");
        line("  const long long* const c = " + vi_ptr(in.c) + ";");
        line("  long long first = -1;");
        line("  for (long long t = 0; t < NI; ++t)"
             " if (mask[t]) { first = t; break; }");
        line(strf("  if (first < 0) goto L%lld;",
                  static_cast<long long>(in.imm)));
        line("  const long long init = a[first], lim = b[first],"
             " stp = c[first];");
        line("  for (long long t = first; t < NI; ++t) {");
        line("    if (!mask[t]) continue;");
        line("    if (a[t] != init || b[t] != lim || c[t] != stp) " +
             fail_msg("for: non-uniform loop bounds across work-group"));
        line("  }");
        line("  if (stp <= 0) " + fail_msg("for: non-positive step"));
        line("  " + u(in.dst) + " = init;");
        line(strf("  u[%d] = lim;", in.dst + 1));
        line(strf("  u[%d] = stp; }", in.dst + 2));
        return;
      }
      case Op::MaskPush:
        line("{ std::memcpy(mask_saved + mask_depth * NI, mask,"
             " (std::size_t)NI);");
        line(strf("  mask_cond[mask_depth] = %d;", in.a));
        line("  mask_saved_active[mask_depth] = active;");
        line("  ++mask_depth;");
        line("  const long long* const c = " + vi_ptr(in.a) + ";");
        line("  long long n = 0;");
        line("  " + t_loop_open(false) +
             "mask[t] = (mask[t] && c[t] != 0) ? 1 : 0; n += mask[t]; }");
        line("  active = n; }");
        return;
      case Op::MaskFlip:
        line("{ const unsigned char* const sv ="
             " mask_saved + (mask_depth - 1) * NI;");
        line("  const long long* const c ="
             " vi + (long long)mask_cond[mask_depth - 1] * NI;");
        line("  long long n = 0;");
        line("  " + t_loop_open(false) +
             "mask[t] = (sv[t] && c[t] == 0) ? 1 : 0; n += mask[t]; }");
        line("  active = n; }");
        return;
      case Op::MaskPop:
        line("{ --mask_depth;");
        line("  std::memcpy(mask, mask_saved + mask_depth * NI,"
             " (std::size_t)NI);");
        line("  active = mask_saved_active[mask_depth]; }");
        return;
      case Op::Barrier:
        line("{ for (long long t = 0; t < NI; ++t) if (!mask[t]) " +
             fail_msg("barrier inside divergent control flow"));
        line("  ++c_bar; }");
        return;
      case Op::Throw:
        line(fail_msg(p_.messages[static_cast<std::size_t>(in.imm)]));
        return;
    }
    fail(strf("native emit: unhandled opcode %d at pc %zu",
              static_cast<int>(in.op), pc));
  }

  /// Emits the hoisted declarations for a memory op's address operand.
  void emit_addr(const Insn& in, const char* sfx = "") {
    if (in.flags & kImmAddr) return;  // constant, inlined at use
    if (in.flags & kBUni) {
      line(strf("  const long long ua%s = %s;", sfx, u(in.b).c_str()));
    } else {
      line(strf("  const long long* const av%s = ", sfx) + vi_ptr(in.b) +
           ";");
    }
  }
  /// Braced initializer splatting `x` across `n` vector lanes.
  static std::string splat_list(const std::string& x, int n) {
    std::string s = "{";
    for (int i = 0; i < n; ++i) {
      if (i) s += ", ";
      s += x;
    }
    return s + "}";
  }

  /// Per-item address expression matching emit_addr().
  static std::string addr_expr(const Insn& in, const char* sfx = "") {
    if (in.flags & kImmAddr) return imm64(in.imm);
    if (in.flags & kBUni) return strf("ua%s", sfx);
    return strf("av%s[t]", sfx);
  }

  /// Hoisted bounds check for the SIMD memory paths: constant and uniform
  /// addresses check once before the copy loop (the compiler folds the
  /// constant form away entirely); varying addresses OR-reduce across the
  /// items — a branch-free loop the vectorizer handles — and re-scan
  /// scalar only on failure, so the message names the first faulting item
  /// exactly as the VM does.
  void emit_range_check(const Insn& in, const std::string& len,
                        const std::string& fails, const char* sfx = "") {
    const int w = in.lanes;
    if (in.flags & (kImmAddr | kBUni)) {
      line(strf("  { const long long idx = %s;", addr_expr(in, sfx).c_str()));
      line(strf("    if (idx < 0 || idx + %d > %s) ", w, len.c_str()) + fails);
      line("  }");
      return;
    }
    line("  { long long bad = 0;");
    line(strf("    vl%d acc = {};", simd_));
    line("    long long t = 0;");
    line(strf("    for (; t + %d <= NI; t += %d) { const vl%d v_ = "
              "ldi%d(av%s + t); acc |= (v_ < 0) | (v_ + %d > %s); }",
              simd_, simd_, simd_, simd_, sfx, w, len.c_str()));
    line(strf("    for (; t < NI; ++t) bad |= "
              "(long long)(av%s[t] < 0) | (long long)(av%s[t] + %d > %s);",
              sfx, sfx, w, len.c_str()));
    for (int l = 0; l < simd_; ++l)
      line(strf("    bad |= acc[%d];", l));
    line("    if (bad) for (long long t2 = 0; t2 < NI; ++t2) {");
    line(strf("      const long long idx = av%s[t2];", sfx));
    line(strf("      if (idx < 0 || idx + %d > %s) ", w, len.c_str()) + fails);
    line("    }");
    line("  }");
  }

  void emit_fused(const Insn& prod, const Insn& cons) {
    if (prod.op == Op::SplatLaneP) {
      emit_fused_splat_fma(prod, cons);
    } else {
      emit_fused_copy(prod, cons);
    }
  }

  /// SplatLaneP + FmaPP with a dead intermediate register: the rank-1
  /// update broadcasts the splat source directly. Within one item the
  /// splat read still precedes the FmaPP write, and items touch only
  /// their own private slab, so evaluation order is unchanged.
  void emit_fused_splat_fma(const Insn& sp, const Insn& fm) {
    const ArrayRef& sar = p_.arrays[static_cast<std::size_t>(sp.a)];
    const ArrayRef& cr = p_.arrays[static_cast<std::size_t>(fm.a)];
    const ArrayRef& br = p_.arrays[static_cast<std::size_t>(fm.b)];
    const bool f32 = (fm.aux & kRoundF32) != 0;
    const int w = fm.lanes;
    const long long soff = sar.offset + sp.imm;
    const long long coff = cr.offset + fm.dst;
    const long long boff = br.offset + fm.imm;
    line("{ " + t_loop_open(false));
    line(strf("    double* const pa = parr + t * %lld;",
              static_cast<long long>(p_.parr_doubles)));
    line(strf("    double* const cp = pa + %lld;", coff));
    line(strf("    const double* const bp = pa + %lld;", boff));
    line(strf("    const double x = pa[%lld];", soff));
    if (vectorizable_width(w)) {
      line(strf("    const vd%d vx = ", w) + splat_list("x", w) + ";");
      const std::string ve = strf("vx * ld%d(bp) + ld%d(cp)", w, w);
      line(strf("    st%d(cp, ", w) +
           (f32 ? strf("rnd%d(", w) + ve + ")" : ve) + ");");
    } else {
      for (int l = 0; l < w; ++l)
        line(strf("    cp[%d] = ", l) +
             rnd(f32, strf("x * bp[%d] + cp[%d]", l, l)) + ";");
    }
    line("  }");
    line(strf("  c_flops += (unsigned long long)(%d * NI); "
              "c_mads += (unsigned long long)NI;",
              2 * w));
    line("}");
  }

  /// Load + store with a dead intermediate register: one copy loop with
  /// both bounds checks hoisted (load check first — its failure message
  /// wins, exactly the VM's execution order).
  void emit_fused_copy(const Insn& ld, const Insn& st) {
    const int w = ld.lanes;
    const bool ld_g = ld.op == Op::LoadG;
    const bool ld_local = ld.op == Op::LoadL;
    const bool st_local = st.op == Op::StoreL;
    line("{");
    std::string src_base, src_len, ld_fails;
    if (ld_g) {
      line(strf("  const double* const gp = arg_f64[%d];", ld.a));
      line(strf("  const long long en = arg_elems[%d];", ld.a));
      src_base = "gp";
      src_len = "en";
      ld_fails =
          fail_stmt(cstr(strf("global load out of range: index %%lld + %d "
                              "lanes, buffer %%lld elements",
                              w)),
                    {"(long long)idx", "(long long)en"});
    } else {
      const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(ld.a)];
      src_base = ld_local ? strf("larr + %d", ar.offset)
                          : strf("parr + t * %lld + %d",
                                 static_cast<long long>(p_.parr_doubles),
                                 ar.offset);
      src_len = strf("%d", ar.len);
      ld_fails = fail_stmt(
          cstr(strf("%s array '%%s' load out of range: index %%lld + %d "
                    "lanes, %%zu elements",
                    ld_local ? "local" : "private", w)),
          {cstr(ar.name), "(long long)idx", strf("(std::size_t)%d", ar.len)});
    }
    const ArrayRef& sar = p_.arrays[static_cast<std::size_t>(st.a)];
    const std::string dst_base =
        st_local ? strf("larr + %d", sar.offset)
                 : strf("parr + t * %lld + %d",
                        static_cast<long long>(p_.parr_doubles), sar.offset);
    const std::string st_fails = fail_stmt(
        cstr(strf("%s array '%%s' store out of range: index %%lld + %d "
                  "lanes, %%zu elements",
                  st_local ? "local" : "private", w)),
        {cstr(sar.name), "(long long)idx", strf("(std::size_t)%d", sar.len)});
    emit_addr(ld, "a");
    emit_addr(st, "b");
    emit_range_check(ld, src_len, ld_fails, "a");
    emit_range_check(st, strf("%d", sar.len), st_fails, "b");
    line("  for (long long t = 0; t < NI; ++t) {");
    line("    const long long ia = " + addr_expr(ld, "a") + ";");
    line("    const long long ib = " + addr_expr(st, "b") + ";");
    line(strf("    const double* const sp_ = (%s) + ia;", src_base.c_str()));
    line(strf("    double* const dp_ = (%s) + ib;", dst_base.c_str()));
    if (vectorizable_width(w)) {
      line(strf("    st%d(dp_, ld%d(sp_));", w, w));
    } else {
      for (int l = 0; l < w; ++l)
        line(strf("    dp_[%d] = sp_[%d];", l, l));
    }
    line("  }");
    if (ld_g)
      line(strf("  c_gld += (unsigned long long)(%d * NI);", w * 8));
    if (ld_local)
      line(strf("  c_lld += (unsigned long long)(%d * NI);",
                w * ((ld.aux & kCount8) ? 8 : 4)));
    if (st_local)
      line(strf("  c_lst += (unsigned long long)(%d * NI);",
                w * ((st.aux & kCount8) ? 8 : 4)));
    line("}");
  }

  const Kernel& k_;
  const CompiledKernel& p_;
  const int simd_;               ///< vector width in doubles; 0 = scalar
  std::string out_;
  std::vector<char> is_target_;
  std::set<std::int32_t> splat_zero_elide_;
  std::set<int> vwidths_;        ///< vector widths the prologue defines
  std::set<std::size_t> fused_skip_;          ///< producers folded away
  std::map<std::size_t, std::size_t> fused_;  ///< consumer -> producer
};

}  // namespace

std::string emit_native_source(const Kernel& kernel,
                               const CompiledKernel& prog,
                               const NativeEmitOptions& opts) {
  Emitter e(kernel, prog, opts);
  return e.run();
}

}  // namespace gemmtune::ir
