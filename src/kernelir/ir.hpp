// Expression and statement nodes of the kernel IR.
//
// The GEMM code generator builds kernels in this IR; the emitter
// (emit.hpp) prints them as OpenCL C and the interpreter (interp.hpp)
// executes them with work-group lockstep semantics. Keeping a single IR as
// the source of truth guarantees that the OpenCL text we ship and the
// semantics we test are the same program.
//
// The IR is deliberately scoped to what auto-generated GEMM kernels need:
// work-group-uniform `for` loops, barriers, loads/stores on the three
// OpenCL address spaces, integer addressing arithmetic, and lane-wise
// floating vector math with mad().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernelir/types.hpp"

namespace gemmtune::ir {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;
struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// Expression node kinds.
enum class ExprKind {
  IntLit,      ///< integer literal
  FpLit,       ///< floating literal (splatted if type is vector)
  VarRef,      ///< read of a private scalar/vector variable
  ArgRef,      ///< read of a scalar kernel argument (Int or Float)
  Builtin,     ///< get_group_id / get_local_id / ... (dim in `dim`)
  Bin,         ///< binary op (kids[0], kids[1])
  Mad,         ///< mad(kids[0], kids[1], kids[2]) — lane-wise fused a*b+c
  Splat,       ///< broadcast scalar kids[0] to a vector
  Lane,        ///< extract lane `lane` of vector kids[0]
  LoadGlobal,  ///< vector load of `type.lanes` consecutive elements from a
               ///< __global kernel argument at scalar-element index kids[0]
  LoadLocal,   ///< same, from a __local array (symbol `slot`)
  LoadPrivate, ///< same, from a private array (symbol `slot`)
  Select       ///< kids[0] ? kids[1] : kids[2]; cond is int scalar (0/1)
};

/// Binary operators. Integer ops work on scalar ints; F-ops are lane-wise
/// on equal-width floating vectors.
enum class BinOp {
  Add, Sub, Mul, Div, Mod,      // integer arithmetic
  Lt, And,                      // integer comparison / logical-and (0/1)
  FAdd, FSub, FMul              // lane-wise floating arithmetic
};

/// OpenCL work-item builtins. Only dimensions 0 and 1 appear (the paper
/// uses a two-dimensional NDRange).
enum class BuiltinFn { GroupId, LocalId, GlobalId, LocalSize, NumGroups };

/// Immutable expression node.
struct Expr {
  ExprKind kind;
  Type type;
  std::int64_t ival = 0;   ///< IntLit
  double fval = 0;         ///< FpLit
  int slot = -1;           ///< VarRef / LoadLocal / LoadPrivate symbol slot
  int dim = 0;             ///< Builtin dimension
  BinOp bop = BinOp::Add;
  BuiltinFn bfn = BuiltinFn::GroupId;
  int lane = 0;            ///< Lane index
  int arg = -1;            ///< LoadGlobal kernel-argument index
  std::vector<ExprPtr> kids;
};

/// Statement node kinds.
enum class StmtKind {
  Assign,        ///< private variable (slot) = a
  StorePrivate,  ///< private array slot[index a] = b (vector-wide)
  StoreLocal,    ///< local array slot[index a] = b
  StoreGlobal,   ///< global arg[index a] = b
  For,           ///< for (var slot = a; var < b; var += c) body
  If,            ///< if (a != 0) body — may diverge across work-items;
                 ///< barriers inside a divergent region are rejected
  Barrier,       ///< barrier(CLK_LOCAL_MEM_FENCE)
  Comment        ///< emitter-only annotation
};

/// Statement node. `For` loop bounds must be work-group uniform; the
/// interpreter verifies this at run time.
struct Stmt {
  StmtKind kind;
  int slot = -1;
  int arg = -1;
  ExprPtr a, b, c;
  std::vector<StmtPtr> body;
  std::string text;
};

// ---- expression constructors -------------------------------------------

ExprPtr iconst(std::int64_t v);
ExprPtr fconst(double v, Type t);
ExprPtr var_ref(int slot, Type t);
ExprPtr arg_ref(int arg, Type t);
ExprPtr builtin(BuiltinFn fn, int dim);
ExprPtr bin(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr mad(ExprPtr a, ExprPtr b, ExprPtr c);
ExprPtr splat(ExprPtr scalar, int lanes);
ExprPtr lane(ExprPtr vec, int idx);
ExprPtr load_global(int arg, ExprPtr index, Type t);
ExprPtr load_local(int slot, ExprPtr index, Type t);
ExprPtr load_private(int slot, ExprPtr index, Type t);
ExprPtr select(ExprPtr cond, ExprPtr when_true, ExprPtr when_false);

// Integer convenience wrappers used heavily by the code generator.
inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return bin(BinOp::Add, a, b); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return bin(BinOp::Sub, a, b); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return bin(BinOp::Mul, a, b); }
inline ExprPtr operator+(ExprPtr a, std::int64_t b) { return a + iconst(b); }
inline ExprPtr operator*(ExprPtr a, std::int64_t b) { return a * iconst(b); }

// ---- statement constructors ----------------------------------------------

StmtPtr assign(int slot, ExprPtr value);
StmtPtr store_private(int slot, ExprPtr index, ExprPtr value);
StmtPtr store_local(int slot, ExprPtr index, ExprPtr value);
StmtPtr store_global(int arg, ExprPtr index, ExprPtr value);
StmtPtr for_loop(int slot, ExprPtr init, ExprPtr limit, ExprPtr step,
                 std::vector<StmtPtr> body);
StmtPtr if_then(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr barrier();
StmtPtr comment(std::string text);

}  // namespace gemmtune::ir
