// OpenCL C source emitter.
//
// Prints an IR kernel as a complete OpenCL C kernel function — the artifact
// the paper's code generator produces. The text is what a real OpenCL
// runtime would compile; the interpreter executes the same IR, so emitted
// source and tested semantics cannot diverge.
#pragma once

#include <string>

#include "kernelir/kernel.hpp"

namespace gemmtune::ir {

/// Renders the kernel as OpenCL C.
std::string emit_opencl(const Kernel& kernel);

/// Renders a single expression (exposed for tests).
std::string emit_expr(const Kernel& kernel, const ExprPtr& e);

}  // namespace gemmtune::ir
