#include "kernelir/kernel.hpp"

#include "common/error.hpp"

namespace gemmtune::ir {

// ---- expression constructors ---------------------------------------------

namespace {
ExprPtr make(Expr e) { return std::make_shared<Expr>(std::move(e)); }
}  // namespace

ExprPtr iconst(std::int64_t v) {
  Expr e;
  e.kind = ExprKind::IntLit;
  e.type = i32();
  e.ival = v;
  return make(std::move(e));
}

ExprPtr fconst(double v, Type t) {
  check(t.is_fp(), "fconst: integer type");
  Expr e;
  e.kind = ExprKind::FpLit;
  e.type = t;
  e.fval = v;
  return make(std::move(e));
}

ExprPtr var_ref(int slot, Type t) {
  Expr e;
  e.kind = ExprKind::VarRef;
  e.type = t;
  e.slot = slot;
  return make(std::move(e));
}

ExprPtr arg_ref(int arg, Type t) {
  check(t.lanes == 1, "arg_ref: scalar arguments only");
  Expr e;
  e.kind = ExprKind::ArgRef;
  e.type = t;
  e.arg = arg;
  return make(std::move(e));
}

ExprPtr builtin(BuiltinFn fn, int dim) {
  check(dim == 0 || dim == 1, "builtin: dimension must be 0 or 1");
  Expr e;
  e.kind = ExprKind::Builtin;
  e.type = i32();
  e.bfn = fn;
  e.dim = dim;
  return make(std::move(e));
}

ExprPtr bin(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  check(lhs && rhs, "bin: null operand");
  const bool int_op = op == BinOp::Add || op == BinOp::Sub ||
                      op == BinOp::Mul || op == BinOp::Div ||
                      op == BinOp::Mod || op == BinOp::Lt ||
                      op == BinOp::And;
  if (int_op) {
    check(!lhs->type.is_fp() && !rhs->type.is_fp(),
          "bin: integer op on floating operands");
  } else {
    check(lhs->type.is_fp() && lhs->type == rhs->type,
          "bin: floating op needs matching floating types");
  }
  Expr e;
  e.kind = ExprKind::Bin;
  e.type = lhs->type;
  e.bop = op;
  e.kids = {std::move(lhs), std::move(rhs)};
  return make(std::move(e));
}

ExprPtr mad(ExprPtr a, ExprPtr b, ExprPtr c) {
  check(a && b && c, "mad: null operand");
  check(a->type.is_fp() && a->type == b->type && a->type == c->type,
        "mad: operands must share a floating type");
  Expr e;
  e.kind = ExprKind::Mad;
  e.type = a->type;
  e.kids = {std::move(a), std::move(b), std::move(c)};
  return make(std::move(e));
}

ExprPtr splat(ExprPtr scalar, int lanes) {
  check(scalar && scalar->type.is_fp() && scalar->type.lanes == 1,
        "splat: needs a floating scalar");
  if (lanes == 1) return scalar;
  Expr e;
  e.kind = ExprKind::Splat;
  e.type = fp(scalar->type.scalar, lanes);
  e.kids = {std::move(scalar)};
  return make(std::move(e));
}

ExprPtr lane(ExprPtr vec, int idx) {
  check(vec && vec->type.is_fp(), "lane: needs a floating vector");
  check(idx >= 0 && idx < vec->type.lanes, "lane: index out of range");
  if (vec->type.lanes == 1) return vec;
  Expr e;
  e.kind = ExprKind::Lane;
  e.type = fp(vec->type.scalar, 1);
  e.lane = idx;
  e.kids = {std::move(vec)};
  return make(std::move(e));
}

namespace {
ExprPtr load(ExprKind kind, int slot_or_arg, ExprPtr index, Type t) {
  check(index && !index->type.is_fp(), "load: index must be integer");
  check(t.is_fp(), "load: integer loads unsupported");
  Expr e;
  e.kind = kind;
  e.type = t;
  if (kind == ExprKind::LoadGlobal) {
    e.arg = slot_or_arg;
  } else {
    e.slot = slot_or_arg;
  }
  e.kids = {std::move(index)};
  return make(std::move(e));
}
}  // namespace

ExprPtr select(ExprPtr cond, ExprPtr when_true, ExprPtr when_false) {
  check(cond && when_true && when_false, "select: null operand");
  check(!cond->type.is_fp() && cond->type.lanes == 1,
        "select: condition must be an int scalar");
  check(when_true->type == when_false->type,
        "select: branch types must match");
  Expr e;
  e.kind = ExprKind::Select;
  e.type = when_true->type;
  e.kids = {std::move(cond), std::move(when_true), std::move(when_false)};
  return make(std::move(e));
}

ExprPtr load_global(int arg, ExprPtr index, Type t) {
  return load(ExprKind::LoadGlobal, arg, std::move(index), t);
}
ExprPtr load_local(int slot, ExprPtr index, Type t) {
  return load(ExprKind::LoadLocal, slot, std::move(index), t);
}
ExprPtr load_private(int slot, ExprPtr index, Type t) {
  return load(ExprKind::LoadPrivate, slot, std::move(index), t);
}

// ---- statement constructors -----------------------------------------------

namespace {
StmtPtr make(Stmt s) { return std::make_shared<Stmt>(std::move(s)); }
}  // namespace

StmtPtr assign(int slot, ExprPtr value) {
  check(value != nullptr, "assign: null value");
  Stmt s;
  s.kind = StmtKind::Assign;
  s.slot = slot;
  s.a = std::move(value);
  return make(std::move(s));
}

namespace {
StmtPtr store(StmtKind kind, int slot_or_arg, ExprPtr index, ExprPtr value) {
  check(index && value, "store: null operand");
  check(!index->type.is_fp(), "store: index must be integer");
  check(value->type.is_fp(), "store: value must be floating");
  Stmt s;
  s.kind = kind;
  if (kind == StmtKind::StoreGlobal) {
    s.arg = slot_or_arg;
  } else {
    s.slot = slot_or_arg;
  }
  s.a = std::move(index);
  s.b = std::move(value);
  return make(std::move(s));
}
}  // namespace

StmtPtr store_private(int slot, ExprPtr index, ExprPtr value) {
  return store(StmtKind::StorePrivate, slot, std::move(index),
               std::move(value));
}
StmtPtr store_local(int slot, ExprPtr index, ExprPtr value) {
  return store(StmtKind::StoreLocal, slot, std::move(index),
               std::move(value));
}
StmtPtr store_global(int arg, ExprPtr index, ExprPtr value) {
  return store(StmtKind::StoreGlobal, arg, std::move(index),
               std::move(value));
}

StmtPtr for_loop(int slot, ExprPtr init, ExprPtr limit, ExprPtr step,
                 std::vector<StmtPtr> body) {
  check(init && limit && step, "for_loop: null bound");
  Stmt s;
  s.kind = StmtKind::For;
  s.slot = slot;
  s.a = std::move(init);
  s.b = std::move(limit);
  s.c = std::move(step);
  s.body = std::move(body);
  return make(std::move(s));
}

StmtPtr if_then(ExprPtr cond, std::vector<StmtPtr> body) {
  check(cond && !cond->type.is_fp() && cond->type.lanes == 1,
        "if_then: condition must be an int scalar");
  Stmt s;
  s.kind = StmtKind::If;
  s.a = std::move(cond);
  s.body = std::move(body);
  return make(std::move(s));
}

StmtPtr barrier() {
  Stmt s;
  s.kind = StmtKind::Barrier;
  return make(std::move(s));
}

StmtPtr comment(std::string text) {
  Stmt s;
  s.kind = StmtKind::Comment;
  s.text = std::move(text);
  return make(std::move(s));
}

// ---- Kernel ----------------------------------------------------------------

std::int64_t Kernel::local_mem_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& sym : symbols) {
    if (sym.array_len > 0 && sym.space == AddrSpace::Local)
      bytes += static_cast<std::int64_t>(sym.array_len) *
               scalar_bytes(sym.type.scalar);
  }
  return bytes;
}

std::int64_t Kernel::private_scalars() const {
  std::int64_t n = 0;
  for (const auto& sym : symbols) {
    if (sym.space != AddrSpace::Private) continue;
    n += sym.array_len > 0 ? sym.array_len : sym.type.lanes;
  }
  return n;
}

// ---- KernelBuilder ----------------------------------------------------------

KernelBuilder::KernelBuilder(std::string name, Scalar precision) {
  k_.name = std::move(name);
  k_.precision = precision;
}

int KernelBuilder::add_arg(const std::string& name, ArgKind kind,
                           Scalar elem) {
  check(!built_, "KernelBuilder: already built");
  k_.args.push_back({name, kind, elem});
  return static_cast<int>(k_.args.size()) - 1;
}

int KernelBuilder::decl_var(const std::string& name, Type t) {
  check(!built_, "KernelBuilder: already built");
  Symbol sym{name, t, 0, AddrSpace::Private, n_priv_vars_++};
  k_.symbols.push_back(std::move(sym));
  return static_cast<int>(k_.symbols.size()) - 1;
}

int KernelBuilder::decl_array(const std::string& name, Scalar elem, int len,
                              AddrSpace space) {
  check(!built_, "KernelBuilder: already built");
  check(len > 0, "decl_array: empty array");
  const int storage =
      space == AddrSpace::Private ? n_priv_arrays_++ : n_local_arrays_++;
  Symbol sym{name, fp(elem, 1), len, space, storage};
  k_.symbols.push_back(std::move(sym));
  return static_cast<int>(k_.symbols.size()) - 1;
}

ExprPtr KernelBuilder::ref(int slot) const {
  const Symbol& sym = symbol(slot);
  check(sym.array_len == 0, "ref: symbol is an array");
  return var_ref(slot, sym.type);
}

void KernelBuilder::set_reqd_local(std::int64_t x, std::int64_t y) {
  k_.reqd_local[0] = x;
  k_.reqd_local[1] = y;
}

void KernelBuilder::append(StmtPtr s) {
  check(!built_, "KernelBuilder: already built");
  k_.body.push_back(std::move(s));
}

Kernel KernelBuilder::build() {
  check(!built_, "KernelBuilder: already built");
  built_ = true;
  return std::move(k_);
}

const Symbol& KernelBuilder::symbol(int slot) const {
  check(slot >= 0 && slot < static_cast<int>(k_.symbols.size()),
        "symbol: bad slot");
  return k_.symbols[static_cast<std::size_t>(slot)];
}

}  // namespace gemmtune::ir
