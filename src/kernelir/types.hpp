// Scalar and vector types of the kernel IR.
//
// The IR supports the value types the paper's generated kernels use: 32-bit
// ints for addressing, float/double scalars, and OpenCL vector variables of
// width 2..16 ("Vector width" parameter, Section III-B).
#pragma once

#include <string>

#include "common/error.hpp"

namespace gemmtune::ir {

/// Element scalar kinds.
enum class Scalar { I32, F32, F64 };

/// A possibly-vector type: `lanes` is 1 for scalars, or an OpenCL vector
/// width (2, 4, 8, 16). Integers are always scalar in generated kernels.
struct Type {
  Scalar scalar = Scalar::I32;
  int lanes = 1;

  bool is_fp() const { return scalar != Scalar::I32; }
  bool operator==(const Type&) const = default;
};

/// Scalar int type.
inline Type i32() { return {Scalar::I32, 1}; }

/// Floating type of the given precision and lane count.
inline Type fp(Scalar s, int lanes = 1) {
  check(s != Scalar::I32, "fp(): integer scalar");
  check(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8 || lanes == 16,
        "fp(): invalid vector width");
  return {s, lanes};
}

/// Element size in bytes.
inline int scalar_bytes(Scalar s) { return s == Scalar::F64 ? 8 : 4; }

/// OpenCL C spelling of a type ("double2", "float", "int").
inline std::string ocl_name(const Type& t) {
  std::string base;
  switch (t.scalar) {
    case Scalar::I32: base = "int"; break;
    case Scalar::F32: base = "float"; break;
    case Scalar::F64: base = "double"; break;
  }
  if (t.lanes > 1) base += std::to_string(t.lanes);
  return base;
}

/// Maximum vector width the IR supports.
inline constexpr int kMaxLanes = 16;

}  // namespace gemmtune::ir
