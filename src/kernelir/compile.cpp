// Lowering from the kernel IR tree to flat register-machine bytecode.
//
// The contract with the tree-walking interpreter (interp.cpp) is bit
// identity of buffers AND dynamic counters, so the optimization passes are
// fenced by what carries observable effects:
//  * integer arithmetic, builtins, literals, and scalar-argument reads are
//    pure — they may be constant-folded, value-numbered, and hoisted;
//  * floating arithmetic (FAdd/FSub/FMul/Mad) counts flops/mads and every
//    load/store counts bytes, so those are lowered exactly once per tree
//    evaluation site and never move;
//  * pure floating *movement* (literals, splat, lane, copies) carries no
//    counters and may be hoisted, but is never value-numbered (cheap
//    anyway, and variables make their identity mutable).
// Integer division/modulo can throw, so it participates in value numbering
// (re-using an earlier result is always valid) but never hoists.
//
// Hoisting works on placement levels: every lowered value records the loop
// depth at which it was computed, and an instruction whose operands all
// live below the current loop's depth is emitted into the enclosing
// frame's stream instead — which at that point is exactly the loop's
// preheader (the loop body is assembled into its own stream and appended
// when the loop closes). Values placed this way get fresh, pinned
// registers so later body code can never clobber a preheader result.
//
// A statement only executes in the tree-walker when at least one work-item
// is active: every masked-region entry is guarded (varying `if` bodies sit
// behind a jump-if-none-active), so a uniform computation evaluated once
// per group observes the same values — and raises the same errors — as the
// tree evaluating it at the first active item.
#include "kernelir/compile.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "kernelir/ir.hpp"
#include "trace/trace.hpp"

namespace gemmtune::ir {

namespace {

// ---- canonical serialization ----------------------------------------------

void put_i64(std::string& out, std::int64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_f64(std::string& out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_u8(std::string& out, unsigned v) {
  out.push_back(static_cast<char>(v & 0xff));
}

void put_str(std::string& out, const std::string& s) {
  put_i64(out, static_cast<std::int64_t>(s.size()));
  out += s;
}

void put_type(std::string& out, Type t) {
  put_u8(out, static_cast<unsigned>(t.scalar));
  put_u8(out, static_cast<unsigned>(t.lanes));
}

void ser_expr(std::string& out, const ExprPtr& e) {
  if (!e) {
    put_u8(out, 0xff);
    return;
  }
  put_u8(out, static_cast<unsigned>(e->kind));
  put_type(out, e->type);
  put_i64(out, e->ival);
  put_f64(out, e->fval);
  put_i64(out, e->slot);
  put_u8(out, static_cast<unsigned>(e->dim));
  put_u8(out, static_cast<unsigned>(e->bop));
  put_u8(out, static_cast<unsigned>(e->bfn));
  put_i64(out, e->lane);
  put_i64(out, e->arg);
  put_i64(out, static_cast<std::int64_t>(e->kids.size()));
  for (const auto& k : e->kids) ser_expr(out, k);
}

void ser_stmt(std::string& out, const StmtPtr& s) {
  put_u8(out, static_cast<unsigned>(s->kind));
  put_i64(out, s->slot);
  put_i64(out, s->arg);
  ser_expr(out, s->a);
  ser_expr(out, s->b);
  ser_expr(out, s->c);
  put_i64(out, static_cast<std::int64_t>(s->body.size()));
  for (const auto& b : s->body) ser_stmt(out, b);
  put_str(out, s->text);
}

// ---- uniformity analysis ---------------------------------------------------

// A value is work-group uniform when every work-item of a group computes
// the same value. Structural rule: literals, scalar arguments, and the
// group-level builtins are uniform; local/global ids are not; loads are
// conservatively varying (address spaces are mutable per item). Variables
// start uniform and are demoted to a fixpoint: an assignment inside a
// divergent (varying-`if`) region, or of a varying expression, makes the
// variable varying; a loop variable is varying iff its loop is divergent
// (bound uniformity across items is *verified* at run time, so a loop that
// runs has uniform bounds).
struct Analysis {
  std::vector<char> uniform;  // per symbol slot
};

bool expr_uniform(const ExprPtr& e, const std::vector<char>& uni,
                  const Kernel& k) {
  if (!e) return true;
  switch (e->kind) {
    case ExprKind::IntLit:
    case ExprKind::FpLit:
    case ExprKind::ArgRef:
      return true;
    case ExprKind::Builtin:
      return e->bfn == BuiltinFn::GroupId || e->bfn == BuiltinFn::LocalSize ||
             e->bfn == BuiltinFn::NumGroups;
    case ExprKind::VarRef:
      if (e->slot < 0 || e->slot >= static_cast<int>(k.symbols.size()))
        return false;
      return uni[static_cast<std::size_t>(e->slot)] != 0;
    case ExprKind::LoadGlobal:
    case ExprKind::LoadLocal:
    case ExprKind::LoadPrivate:
      return false;
    default:
      for (const auto& kid : e->kids)
        if (!expr_uniform(kid, uni, k)) return false;
      return true;
  }
}

void analyze_stmts(const std::vector<StmtPtr>& body, bool divergent,
                   std::vector<char>& uni, const Kernel& k, bool& changed) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::Assign: {
        if (s->slot < 0 || s->slot >= static_cast<int>(k.symbols.size()))
          break;
        auto& u = uni[static_cast<std::size_t>(s->slot)];
        if (u && (divergent || !expr_uniform(s->a, uni, k))) {
          u = 0;
          changed = true;
        }
        break;
      }
      case StmtKind::For: {
        if (s->slot >= 0 && s->slot < static_cast<int>(k.symbols.size())) {
          auto& u = uni[static_cast<std::size_t>(s->slot)];
          if (u && divergent) {
            u = 0;
            changed = true;
          }
        }
        analyze_stmts(s->body, divergent, uni, k, changed);
        break;
      }
      case StmtKind::If: {
        const bool div =
            divergent || !expr_uniform(s->a, uni, k);
        analyze_stmts(s->body, div, uni, k, changed);
        break;
      }
      default:
        break;
    }
  }
}

Analysis analyze(const Kernel& k) {
  Analysis a;
  a.uniform.assign(k.symbols.size(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    analyze_stmts(k.body, /*divergent=*/false, a.uniform, k, changed);
  }
  return a;
}

// ---- compile-time constant evaluation -------------------------------------

// Evaluates a pure integer expression with no variable/builtin/load
// dependence. Used by the strength-reduction peepholes to resolve private
// array addresses before lowering; general folding happens in lower_int.
std::optional<std::int64_t> const_eval(const ExprPtr& e) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case ExprKind::IntLit:
      return e->ival;
    case ExprKind::Bin: {
      if (e->kids.size() != 2) return std::nullopt;
      auto a = const_eval(e->kids[0]);
      auto b = const_eval(e->kids[1]);
      if (!a || !b) return std::nullopt;
      switch (e->bop) {
        case BinOp::Add: return *a + *b;
        case BinOp::Sub: return *a - *b;
        case BinOp::Mul: return *a * *b;
        case BinOp::Div:
          if (*b == 0) return std::nullopt;
          return *a / *b;
        case BinOp::Mod:
          if (*b == 0) return std::nullopt;
          return *a % *b;
        case BinOp::Lt: return *a < *b ? 1 : 0;
        case BinOp::And: return (*a != 0 && *b != 0) ? 1 : 0;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

// ---- the compiler ----------------------------------------------------------

/// A lowered value: a compile-time integer constant or a register, with
/// the loop depth it was materialized at (for invariant hoisting).
struct Value {
  enum class K { Const, U, VI, VF } k = K::Const;
  std::int64_t cval = 0;
  std::int32_t reg = 0;  ///< U/VI register index, or VF base offset
  int lanes = 1;         ///< VF width in doubles per item
  int level = 0;         ///< loop depth of the defining instruction
  int vn = 0;            ///< value number (integer values only)
  bool temp = false;     ///< VF register returns to the free list after use
};

// Value-numbering key: op tag + immediate + operand value numbers.
using VnKey = std::tuple<int, std::int64_t, int, int, int>;
constexpr int kTagConst = 1, kTagArg = 2, kTagUBuiltin = 3, kTagVBuiltin = 4,
              kTagBin = 16;  // + BinOp

class Compiler {
 public:
  explicit Compiler(const Kernel& k) : k_(k), analysis_(analyze(k)) {}

  CompiledKernel run() {
    alloc_storage();
    frames_.push_back(make_frame(Frame::Kind::Top, 0));
    for (const auto& s : k_.body) lower_stmt(s);
    Frame top = std::move(frames_.back());
    frames_.pop_back();
    out_.code = std::move(top.body);
    out_.code.push_back(Insn{});  // Halt
    out_.n_u = n_u_;
    out_.n_vi = n_vi_;
    out_.n_vf = n_vf_;
    return std::move(out_);
  }

 private:
  // ---- frames & streams ----------------------------------------------------

  // One open lexical region. `body` collects the region's instructions;
  // when the region closes its stream is appended to the parent with jump
  // targets relocated. `vn` scopes value-numbering entries to the region
  // (an entry must not outlive the execution guarantee of its defining
  // instruction). Loop frames raise `depth`; If frames keep it but stop
  // hoisting (their body is conditionally executed).
  struct Frame {
    enum class Kind { Top, Loop, If } kind = Kind::Top;
    int depth = 0;
    std::vector<Insn> body;
    std::map<VnKey, Value> vn;
  };

  static Frame make_frame(Frame::Kind kind, int depth) {
    Frame f;
    f.kind = kind;
    f.depth = depth;
    return f;
  }

  static bool is_jump(Op op) {
    return op == Op::Jmp || op == Op::JzU || op == Op::JgeU ||
           op == Op::JNone || op == Op::ForCheckV;
  }

  /// Appends `s` to the innermost stream, relocating its jump targets.
  void append_stream(std::vector<Insn> s) {
    auto& dst = frames_.back().body;
    const auto base = static_cast<std::int64_t>(dst.size());
    for (Insn& in : s) {
      if (is_jump(in.op)) in.imm += base;
      dst.push_back(in);
    }
  }

  std::int64_t pos() const {
    return static_cast<std::int64_t>(frames_.back().body.size());
  }

  void patch(std::vector<Insn>& stream, std::int64_t at, std::int64_t target) {
    stream[static_cast<std::size_t>(at)].imm = target;
  }

  /// Emits `in` into the innermost stream at the current depth; returns its
  /// position there.
  std::int64_t emit(const Insn& in) {
    frames_.back().body.push_back(in);
    return static_cast<std::int64_t>(frames_.back().body.size()) - 1;
  }

  /// Emits a pure instruction, hoisting it to the outermost loop preheader
  /// its operand `level` allows (never past an If frame, never inside a
  /// divergent region). Returns the frame index that received it — its
  /// depth is the resulting value's level.
  int emit_hoisted(const Insn& in, int level) {
    std::size_t target = frames_.size() - 1;
    if (divergent_ == 0) {
      while (target > 0 && frames_[target].kind == Frame::Kind::Loop &&
             level < frames_[target].depth)
        --target;
    }
    frames_[target].body.push_back(in);
    return static_cast<int>(target);
  }

  int depth() const { return frames_.back().depth; }

  // ---- registers -----------------------------------------------------------

  // Integer registers are bump-allocated and never reused (tiny), so a
  // hoisted definition can never be clobbered by later body code. Floating
  // registers are wide (lanes * nitems doubles) so single-use temporaries
  // recycle through per-width free lists — except hoisted values, which
  // get fresh pinned registers for the same clobber-safety reason.
  std::int32_t fresh_u() { return n_u_++; }
  std::int32_t fresh_vi() { return n_vi_++; }

  std::int32_t fresh_vf(int lanes) {
    const std::int32_t base = n_vf_;
    n_vf_ += lanes;
    return base;
  }

  std::int32_t alloc_vf_temp(int lanes) {
    auto& fl = vf_free_[lanes];
    if (!fl.empty()) {
      const std::int32_t base = fl.back();
      fl.pop_back();
      return base;
    }
    return fresh_vf(lanes);
  }

  void release(const Value& v) {
    if (v.k == Value::K::VF && v.temp) vf_free_[v.lanes].push_back(v.reg);
  }

  int fresh_vn() { return next_vn_++; }

  // ---- value numbering -----------------------------------------------------

  const Value* vn_lookup(const VnKey& key) const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      auto f = it->vn.find(key);
      if (f != it->vn.end()) return &f->second;
    }
    return nullptr;
  }

  /// Emits a pure integer instruction with result caching: an existing
  /// value with the same key is reused; otherwise the instruction is
  /// hoisted as far as `level` allows and registered in the receiving
  /// frame's scope. `can_hoist` is false for ops that may throw (div/mod).
  Value emit_vn(Insn in, const VnKey& key, Value::K cls, int level,
                bool can_hoist) {
    if (const Value* hit = vn_lookup(key)) return *hit;
    Value v;
    v.k = cls;
    v.reg = cls == Value::K::U ? fresh_u() : fresh_vi();
    v.vn = fresh_vn();
    in.dst = v.reg;
    int frame;
    if (can_hoist) {
      frame = emit_hoisted(in, level);
    } else {
      emit(in);
      frame = static_cast<int>(frames_.size()) - 1;
    }
    v.level = frames_[static_cast<std::size_t>(frame)].depth;
    frames_[static_cast<std::size_t>(frame)].vn.emplace(key, v);
    return v;
  }

  /// Materializes an integer value into a uniform register.
  Value ureg(const Value& v) {
    check(v.k != Value::K::VI && v.k != Value::K::VF,
          "compile: uniform register from varying value");
    if (v.k == Value::K::U) return v;
    Insn in;
    in.op = Op::UConst;
    in.imm = v.cval;
    return emit_vn(in, VnKey{kTagConst, v.cval, 0, 0, 0}, Value::K::U, 0,
                   true);
  }

  /// Materializes an integer value into a varying register (splatting
  /// uniform values).
  Value vireg(const Value& v) {
    if (v.k == Value::K::VI) return v;
    const Value u = ureg(v);
    Insn in;
    in.op = Op::VMovU;
    in.a = u.reg;
    return emit_vn(in, VnKey{kTagConst, -1, u.vn, 0, 0}, Value::K::VI,
                   u.level, true);
  }

  // ---- storage layout ------------------------------------------------------

  // Per-variable state. Integer variables live in a dedicated register
  // (uniform or varying per the analysis); floating variables own a
  // kMaxLanes-wide slab matching the tree's Val storage. `cur` snapshots
  // the last assigned integer value so reads forward the RHS register
  // (pinned, written at its own level — hoist-safe); control-flow joins
  // invalidate it back to the architectural register.
  struct VarBind {
    bool uniform = false;
    std::int32_t ireg = 0;   ///< u or vi register (by `uniform`)
    std::int32_t fbase = 0;  ///< vf base, kMaxLanes wide
    Value cur;
  };

  void alloc_storage() {
    for (std::size_t i = 0; i < k_.symbols.size(); ++i) {
      const Symbol& sym = k_.symbols[i];
      if (sym.array_len == 0) continue;
      ArrayRef ref;
      ref.len = sym.array_len;
      ref.local = sym.space == AddrSpace::Local;
      ref.name = sym.name;
      if (ref.local) {
        ref.offset = static_cast<std::int32_t>(out_.larr_doubles);
        out_.larr_doubles += sym.array_len;
      } else {
        ref.offset = static_cast<std::int32_t>(out_.parr_doubles);
        out_.parr_doubles += sym.array_len;
      }
      array_of_slot_[static_cast<int>(i)] =
          static_cast<std::int32_t>(out_.arrays.size());
      out_.arrays.push_back(std::move(ref));
    }
    // Variables first so the zero-initialized region is a prefix.
    vars_.resize(k_.symbols.size());
    for (std::size_t i = 0; i < k_.symbols.size(); ++i) {
      if (k_.symbols[i].array_len != 0) continue;
      VarBind vb;
      vb.uniform = analysis_.uniform[i] != 0;
      vb.ireg = vb.uniform ? fresh_u() : fresh_vi();
      vb.fbase = fresh_vf(kMaxLanes);
      vb.cur = Value{};  // Const 0: unassigned variables read as zero
      vb.cur.vn = fresh_vn();
      vars_[i] = vb;
    }
    out_.n_vi_vars = n_vi_;
    out_.n_vf_vars = n_vf_;
  }

  /// Invalidates a variable's forwarding snapshot: reads go back to the
  /// architectural register, treated as defined at `level`.
  void invalidate_var(int slot, int level) {
    VarBind& vb = vars_[static_cast<std::size_t>(slot)];
    Value v;
    v.k = vb.uniform ? Value::K::U : Value::K::VI;
    v.reg = vb.ireg;
    v.level = level;
    v.vn = fresh_vn();
    vb.cur = v;
  }

  /// Collects variable slots assigned anywhere under `body` (incl. nested
  /// loop variables) for invalidation at region boundaries.
  void collect_assigned(const std::vector<StmtPtr>& body,
                        std::vector<int>& slots) {
    for (const auto& s : body) {
      if ((s->kind == StmtKind::Assign || s->kind == StmtKind::For) &&
          s->slot >= 0 && s->slot < static_cast<int>(k_.symbols.size()) &&
          k_.symbols[static_cast<std::size_t>(s->slot)].array_len == 0)
        slots.push_back(s->slot);
      if (s->kind == StmtKind::For || s->kind == StmtKind::If)
        collect_assigned(s->body, slots);
    }
  }

  // ---- symbol / argument checks -------------------------------------------

  /// Valid scalar-variable slot, or nullopt when the statement must throw
  /// "interp: bad symbol slot" at run time (out-of-range slot in reachable
  /// code — the tree checks per execution). Slots naming the wrong symbol
  /// class are undefined behaviour in the tree-walker and unreachable from
  /// the builders, so they are rejected at compile time.
  bool slot_in_range(int slot) const {
    return slot >= 0 && slot < static_cast<int>(k_.symbols.size());
  }

  std::int32_t intern_message(const std::string& msg) {
    for (std::size_t i = 0; i < out_.messages.size(); ++i)
      if (out_.messages[i] == msg) return static_cast<std::int32_t>(i);
    out_.messages.push_back(msg);
    return static_cast<std::int32_t>(out_.messages.size()) - 1;
  }

  void emit_throw(const std::string& msg) {
    Insn in;
    in.op = Op::Throw;
    in.imm = intern_message(msg);
    emit(in);
  }

  /// Resolves an array slot for the given space; compile-time failure on
  /// IR the builders cannot produce (tree behaviour would be undefined).
  std::int32_t array_id(int slot, AddrSpace space, bool* bad_slot) {
    *bad_slot = false;
    if (!slot_in_range(slot)) {
      *bad_slot = true;
      return 0;
    }
    const Symbol& sym = k_.symbols[static_cast<std::size_t>(slot)];
    check(sym.array_len > 0 && sym.space == space,
          "compile: symbol '" + sym.name + "' is not an array of the "
          "accessed address space");
    return array_of_slot_.at(slot);
  }

  // ---- expression lowering: integers --------------------------------------

  bool masked() const { return divergent_ > 0; }

  bool uniform_expr(const ExprPtr& e) const {
    return expr_uniform(e, analysis_.uniform, k_);
  }

  /// Lowers an integer-valued expression. May emit code; returns a Const
  /// or register value. On malformed-but-reachable sub-expressions a Throw
  /// is emitted and a dummy constant returned (execution never passes it).
  Value lower_int(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::IntLit: {
        Value v;
        v.cval = e->ival;
        v.vn = const_vn(e->ival);
        return v;
      }
      case ExprKind::FpLit: {
        // Reading a floating literal as an integer yields the Val's zero
        // integer field in the tree-walker.
        Value v;
        v.vn = const_vn(0);
        return v;
      }
      case ExprKind::VarRef: {
        if (!slot_in_range(e->slot)) {
          emit_throw("interp: bad symbol slot");
          Value v;
          v.vn = const_vn(0);
          return v;
        }
        const Symbol& sym = k_.symbols[static_cast<std::size_t>(e->slot)];
        check(sym.array_len == 0,
              "compile: variable reference to array symbol '" + sym.name +
                  "'");
        return vars_[static_cast<std::size_t>(e->slot)].cur;
      }
      case ExprKind::ArgRef: {
        check(e->arg >= 0 && e->arg < static_cast<int>(k_.args.size()),
              "compile: argument index out of range");
        Insn in;
        in.op = Op::UArg;
        in.a = e->arg;
        return emit_vn(in, VnKey{kTagArg, e->arg, 0, 0, 0}, Value::K::U, 0,
                       true);
      }
      case ExprKind::Builtin: {
        const bool uni = e->bfn == BuiltinFn::GroupId ||
                         e->bfn == BuiltinFn::LocalSize ||
                         e->bfn == BuiltinFn::NumGroups;
        Insn in;
        in.op = uni ? Op::UBuiltin : Op::VBuiltin;
        in.aux = static_cast<std::uint8_t>(static_cast<int>(e->bfn) * 2 +
                                           e->dim);
        return emit_vn(in,
                       VnKey{uni ? kTagUBuiltin : kTagVBuiltin, in.aux, 0, 0,
                             0},
                       uni ? Value::K::U : Value::K::VI, 0, true);
      }
      case ExprKind::Bin:
        return lower_bin(e);
      case ExprKind::Select:
        return lower_select_int(e);
      default:
        // Floating expression read in integer position: tree Val.i == 0
        // after any floating evaluation, but the evaluation's counters
        // still run — lower it and discard the lanes.
        {
          Value f = lower_fp(e, e->type.lanes > 0 ? e->type.lanes : 1);
          release(f);
          Value v;
          v.vn = const_vn(0);
          return v;
        }
    }
  }

  int const_vn(std::int64_t c) {
    auto it = const_vns_.find(c);
    if (it != const_vns_.end()) return it->second;
    const int vn = fresh_vn();
    const_vns_.emplace(c, vn);
    return vn;
  }

  Value lower_bin(const ExprPtr& e) {
    check(e->kids.size() == 2, "compile: malformed binary expression");
    if (e->bop == BinOp::FAdd || e->bop == BinOp::FSub ||
        e->bop == BinOp::FMul) {
      // Floating arithmetic in integer position (see default case above).
      Value f = lower_fp(e, e->type.lanes);
      release(f);
      Value v;
      v.vn = const_vn(0);
      return v;
    }
    Value a = lower_int(e->kids[0]);
    Value b = lower_int(e->kids[1]);
    // Constant folding — pure integer ops only; division folds only when
    // the divisor is a non-zero constant (else it must throw at the tree's
    // evaluation point).
    if (a.k == Value::K::Const && b.k == Value::K::Const) {
      const bool divlike = e->bop == BinOp::Div || e->bop == BinOp::Mod;
      if (!divlike || b.cval != 0) {
        Value v;
        v.cval = fold(e->bop, a.cval, b.cval);
        v.vn = const_vn(v.cval);
        return v;
      }
    }
    const bool divlike = e->bop == BinOp::Div || e->bop == BinOp::Mod;
    const bool uniform = a.k != Value::K::VI && b.k != Value::K::VI;
    Insn in;
    in.flags = 0;
    if (uniform) {
      a = ureg(a);
      b = ureg(b);
      in.op = ubin_op(e->bop);
    } else {
      a = vireg(a);
      b = vireg(b);
      in.op = vbin_op(e->bop);
      if (divlike && masked()) in.flags |= kMasked;
    }
    in.a = a.reg;
    in.b = b.reg;
    const int level = std::max(a.level, b.level);
    const VnKey key{kTagBin + static_cast<int>(e->bop) +
                        (uniform ? 0 : 1000) + (in.flags ? 2000 : 0),
                    0, a.vn, b.vn, 0};
    // Division can throw, so it is never moved above its evaluation point;
    // reusing an earlier identical result is still sound.
    return emit_vn(in, key, uniform ? Value::K::U : Value::K::VI, level,
                   !divlike);
  }

  static std::int64_t fold(BinOp op, std::int64_t a, std::int64_t b) {
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::Div: return a / b;
      case BinOp::Mod: return a % b;
      case BinOp::Lt: return a < b ? 1 : 0;
      case BinOp::And: return (a != 0 && b != 0) ? 1 : 0;
      default: break;
    }
    fail("compile: bad integer fold");
  }

  static Op ubin_op(BinOp op) {
    switch (op) {
      case BinOp::Add: return Op::UAdd;
      case BinOp::Sub: return Op::USub;
      case BinOp::Mul: return Op::UMul;
      case BinOp::Div: return Op::UDiv;
      case BinOp::Mod: return Op::UMod;
      case BinOp::Lt: return Op::ULt;
      case BinOp::And: return Op::UAnd;
      default: break;
    }
    fail("compile: bad uniform binary op");
  }

  static Op vbin_op(BinOp op) {
    switch (op) {
      case BinOp::Add: return Op::VAdd;
      case BinOp::Sub: return Op::VSub;
      case BinOp::Mul: return Op::VMul;
      case BinOp::Div: return Op::VDiv;
      case BinOp::Mod: return Op::VMod;
      case BinOp::Lt: return Op::VLt;
      case BinOp::And: return Op::VAnd;
      default: break;
    }
    fail("compile: bad varying binary op");
  }

  /// Integer-valued Select. Constant conditions lower the taken branch
  /// only; uniform conditions branch per group; varying conditions run
  /// both branches under complementary masks (the tree short-circuits per
  /// item, so in-branch effects must only fire for items taking it).
  Value lower_select_int(const ExprPtr& e) {
    check(e->kids.size() == 3, "compile: malformed select");
    Value c = lower_int(e->kids[0]);
    if (c.k == Value::K::Const)
      return lower_int(e->kids[c.cval != 0 ? 1 : 2]);
    if (c.k == Value::K::U) {
      // The result is uniform only when both branches are (a uniform
      // condition can still select between varying values).
      const Value cu = ureg(c);
      const bool runi = uniform_expr(e);
      Value r;
      r.k = runi ? Value::K::U : Value::K::VI;
      r.reg = runi ? fresh_u() : fresh_vi();
      r.vn = fresh_vn();
      r.level = depth();
      lower_branch_u(e->kids[1], e->kids[2], cu, r);
      return r;
    }
    // Varying condition: the result is varying even if both branches are
    // uniform expressions (items disagree on which branch they take).
    Value r;
    r.k = Value::K::VI;
    r.reg = fresh_vi();
    r.vn = fresh_vn();
    r.level = depth();
    lower_branch_v(e->kids[0], e->kids[1], e->kids[2], c, r, /*fp_lanes=*/0);
    return r;
  }

  /// Uniform-condition two-way branch assigning into `r` (int registers).
  void lower_branch_u(const ExprPtr& t, const ExprPtr& f, const Value& cond,
                      const Value& r) {
    const std::int64_t jz = emit(jump(Op::JzU, cond.reg));
    open_if_frame();
    move_int_into(r, lower_int(t));
    close_if_frame();
    const std::int64_t jend = emit(jump(Op::Jmp, 0));
    patch(frames_.back().body, jz, pos());
    open_if_frame();
    move_int_into(r, lower_int(f));
    close_if_frame();
    patch(frames_.back().body, jend, pos());
  }

  /// Varying-condition two-way branch into `r` (int when fp_lanes == 0,
  /// else a vf register of that width).
  void lower_branch_v(const ExprPtr& cond_e, const ExprPtr& t,
                      const ExprPtr& f, const Value& cond, const Value& r,
                      int fp_lanes) {
    const Value cv = vireg(cond);
    Insn mp;
    mp.op = Op::MaskPush;
    mp.a = cv.reg;
    emit(mp);
    note_mask_depth();
    const std::int64_t j1 = emit(jump(Op::JNone, 0));
    ++divergent_;
    open_if_frame();
    if (fp_lanes == 0) {
      move_int_into(r, lower_int(t), /*mask=*/true);
    } else {
      move_fp_into(r, lower_fp(t, fp_lanes), fp_lanes, /*mask=*/true);
    }
    close_if_frame();
    --divergent_;
    patch(frames_.back().body, j1, pos());
    Insn mf;
    mf.op = Op::MaskFlip;
    emit(mf);
    const std::int64_t j2 = emit(jump(Op::JNone, 0));
    ++divergent_;
    open_if_frame();
    if (fp_lanes == 0) {
      move_int_into(r, lower_int(f), /*mask=*/true);
    } else {
      move_fp_into(r, lower_fp(f, fp_lanes), fp_lanes, /*mask=*/true);
    }
    close_if_frame();
    --divergent_;
    patch(frames_.back().body, j2, pos());
    Insn pop;
    pop.op = Op::MaskPop;
    emit(pop);
    unnote_mask_depth();
    (void)cond_e;
  }

  static Insn jump(Op op, std::int32_t a) {
    Insn in;
    in.op = op;
    in.a = a;
    return in;
  }

  /// Moves an integer value into the pre-allocated result register `r`.
  void move_int_into(const Value& r, Value v, bool mask = false) {
    Insn in;
    if (r.k == Value::K::U) {
      v = ureg(v);
      in.op = Op::UMov;
      in.a = v.reg;
    } else if (v.k == Value::K::VI) {
      in.op = Op::VMov;
      in.a = v.reg;
    } else {
      v = ureg(v);
      in.op = Op::VMovU;
      in.a = v.reg;
    }
    in.dst = r.reg;
    if (mask) in.flags |= kMasked;
    emit(in);
  }

  /// Moves a floating value (any width) into vf register `r` of `lanes`.
  void move_fp_into(const Value& r, const Value& v, int lanes, bool mask) {
    Insn in;
    in.op = Op::FMov;
    in.dst = r.reg;
    in.a = v.reg;
    in.b = static_cast<std::int32_t>(lanes);           // dst width
    in.c = static_cast<std::int32_t>(v.lanes);         // src stride
    in.lanes = static_cast<std::uint8_t>(std::min(lanes, v.lanes));
    if (mask) in.flags |= kMasked;
    emit(in);
    release(v);
  }

  // An If frame scopes value numbering and stops hoisting without raising
  // the loop depth.
  void open_if_frame() {
    frames_.push_back(make_frame(Frame::Kind::If, depth()));
  }

  void close_if_frame() {
    Frame f = std::move(frames_.back());
    frames_.pop_back();
    append_stream(std::move(f.body));
  }

  void note_mask_depth() {
    ++mask_depth_;
    out_.max_mask_depth = std::max(out_.max_mask_depth, mask_depth_);
  }

  // (mask depth decrements are implicit at MaskPop emission sites)
  void unnote_mask_depth() { --mask_depth_; }

  // ---- expression lowering: floating --------------------------------------

  std::uint8_t round_flag(Scalar s) const {
    return s == Scalar::F32 ? kRoundF32 : 0;
  }

  /// Lowers a floating expression into a vf value normalized to `lanes`
  /// width (the tree zero-pads Vals to kMaxLanes, so a narrower source
  /// reads as zero in the extra lanes).
  Value lower_fp(const ExprPtr& e, int lanes) {
    Value v = lower_fp_raw(e);
    if (v.lanes == lanes) return v;
    Value out;
    out.k = Value::K::VF;
    out.lanes = lanes;
    out.reg = alloc_vf_temp(lanes);
    out.temp = true;
    out.level = depth();
    Insn in;
    in.op = Op::FMov;
    in.dst = out.reg;
    in.a = v.reg;
    in.b = static_cast<std::int32_t>(lanes);
    in.c = static_cast<std::int32_t>(v.lanes);
    in.lanes = static_cast<std::uint8_t>(std::min(lanes, v.lanes));
    emit(in);
    release(v);
    return out;
  }

  /// Allocates the destination for a pure floating-movement op, hoisting
  /// the instruction when its operands allow; pinned when hoisted, a
  /// recyclable temp otherwise.
  Value emit_fp_pure(Insn in, int lanes, int level) {
    Value v;
    v.k = Value::K::VF;
    v.lanes = lanes;
    if (divergent_ == 0 && level < depth()) {
      v.reg = fresh_vf(lanes);  // pinned: lives in a preheader
      in.dst = v.reg;
      const int frame = emit_hoisted(in, level);
      v.level = frames_[static_cast<std::size_t>(frame)].depth;
    } else {
      v.reg = alloc_vf_temp(lanes);
      v.temp = true;
      in.dst = v.reg;
      emit(in);
      v.level = depth();
    }
    return v;
  }

  Value lower_fp_raw(const ExprPtr& e) {
    const int L = e->type.lanes;
    switch (e->kind) {
      case ExprKind::FpLit: {
        // Pre-round into the constant pool so F32 kernels pay nothing at
        // run time.
        const double x = e->type.scalar == Scalar::F32
                             ? static_cast<double>(static_cast<float>(e->fval))
                             : e->fval;
        Insn in;
        in.op = Op::FConst;
        in.lanes = static_cast<std::uint8_t>(L);
        in.imm = static_cast<std::int64_t>(out_.fpool.size());
        for (int l = 0; l < L; ++l) out_.fpool.push_back(x);
        return emit_fp_pure(in, L, 0);
      }
      case ExprKind::IntLit: {
        // Integer literal in floating position: the tree Val's floating
        // lanes stay zero.
        Insn in;
        in.op = Op::FConst;
        in.lanes = static_cast<std::uint8_t>(L);
        in.imm = static_cast<std::int64_t>(out_.fpool.size());
        for (int l = 0; l < L; ++l) out_.fpool.push_back(0.0);
        return emit_fp_pure(in, L, 0);
      }
      case ExprKind::VarRef: {
        if (!slot_in_range(e->slot)) {
          emit_throw("interp: bad symbol slot");
          Insn in;
          in.op = Op::FConst;
          in.lanes = static_cast<std::uint8_t>(L);
          in.imm = static_cast<std::int64_t>(out_.fpool.size());
          for (int l = 0; l < L; ++l) out_.fpool.push_back(0.0);
          return emit_fp_pure(in, L, depth());
        }
        const Symbol& sym = k_.symbols[static_cast<std::size_t>(e->slot)];
        check(sym.array_len == 0,
              "compile: variable reference to array symbol '" + sym.name +
                  "'");
        Value v;
        v.k = Value::K::VF;
        v.reg = vars_[static_cast<std::size_t>(e->slot)].fbase;
        v.lanes = kMaxLanes;
        v.level = depth();  // mutable: reads never hoist
        return v;
      }
      case ExprKind::ArgRef: {
        check(e->arg >= 0 && e->arg < static_cast<int>(k_.args.size()),
              "compile: argument index out of range");
        Insn in;
        in.op = Op::FArg;
        in.a = e->arg;
        in.lanes = static_cast<std::uint8_t>(L);
        in.aux = round_flag(e->type.scalar);
        return emit_fp_pure(in, L, 0);
      }
      case ExprKind::Splat: {
        check(e->kids.size() == 1, "compile: malformed splat");
        Value s = lower_fp_raw(e->kids[0]);
        Insn in;
        in.op = Op::FSplat;
        in.a = s.reg;
        in.aux = static_cast<std::uint8_t>(s.lanes);
        in.lanes = static_cast<std::uint8_t>(L);
        Value v = emit_fp_pure(in, L, s.level);
        release(s);
        return v;
      }
      case ExprKind::Lane: {
        check(e->kids.size() == 1, "compile: malformed lane");
        Value s = lower_fp_raw(e->kids[0]);
        Insn in;
        in.op = Op::FLane;
        in.a = s.reg;
        in.aux = static_cast<std::uint8_t>(s.lanes);
        in.imm = e->lane;
        in.lanes = 1;
        Value v = emit_fp_pure(in, 1, s.level);
        release(s);
        return v;
      }
      case ExprKind::Bin: {
        check(e->kids.size() == 2, "compile: malformed binary expression");
        if (e->bop != BinOp::FAdd && e->bop != BinOp::FSub &&
            e->bop != BinOp::FMul) {
          // Integer expression in floating position: evaluate (it may
          // throw exactly as the tree would) and read zero lanes.
          Value iv = lower_int(e);
          (void)iv;
          Insn in;
          in.op = Op::FConst;
          in.lanes = static_cast<std::uint8_t>(L);
          in.imm = static_cast<std::int64_t>(out_.fpool.size());
          for (int l = 0; l < L; ++l) out_.fpool.push_back(0.0);
          return emit_fp_pure(in, L, depth());
        }
        Value a = lower_fp(e->kids[0], L);
        Value b = lower_fp(e->kids[1], L);
        Insn in;
        in.op = e->bop == BinOp::FAdd  ? Op::FAdd
                : e->bop == BinOp::FSub ? Op::FSub
                                        : Op::FMul;
        in.a = a.reg;
        in.b = b.reg;
        in.lanes = static_cast<std::uint8_t>(L);
        in.aux = round_flag(e->type.scalar);
        if (masked()) in.flags |= kMasked;
        Value v = alloc_arith_dst(L, in);
        release(a);
        release(b);
        return v;
      }
      case ExprKind::Mad: {
        check(e->kids.size() == 3, "compile: malformed mad");
        Value a = lower_fp(e->kids[0], L);
        Value b = lower_fp(e->kids[1], L);
        Value c = lower_fp(e->kids[2], L);
        Insn in;
        in.op = Op::FMad;
        in.a = a.reg;
        in.b = b.reg;
        in.c = c.reg;
        in.lanes = static_cast<std::uint8_t>(L);
        in.aux = round_flag(e->type.scalar);
        if (masked()) in.flags |= kMasked;
        Value v = alloc_arith_dst(L, in);
        release(a);
        release(b);
        release(c);
        return v;
      }
      case ExprKind::LoadGlobal:
        return lower_load_global(e);
      case ExprKind::LoadLocal:
      case ExprKind::LoadPrivate:
        return lower_load_array(e);
      case ExprKind::Select: {
        check(e->kids.size() == 3, "compile: malformed select");
        Value c = lower_int(e->kids[0]);
        if (c.k == Value::K::Const)
          return lower_fp_raw(e->kids[c.cval != 0 ? 1 : 2]);
        if (c.k == Value::K::U) {
          const Value cu = ureg(c);
          Value r;
          r.k = Value::K::VF;
          r.lanes = L;
          r.reg = fresh_vf(L);
          r.level = depth();
          const std::int64_t jz = emit(jump(Op::JzU, cu.reg));
          open_if_frame();
          move_fp_into(r, lower_fp(e->kids[1], L), L, masked());
          close_if_frame();
          const std::int64_t jend = emit(jump(Op::Jmp, 0));
          patch(frames_.back().body, jz, pos());
          open_if_frame();
          move_fp_into(r, lower_fp(e->kids[2], L), L, masked());
          close_if_frame();
          patch(frames_.back().body, jend, pos());
          return r;
        }
        Value r;
        r.k = Value::K::VF;
        r.lanes = L;
        r.reg = fresh_vf(L);
        r.level = depth();
        lower_branch_v(e->kids[0], e->kids[1], e->kids[2], c, r, L);
        return r;
      }
      default: {
        // Integer-only node in floating position: evaluate for effects,
        // result lanes are zero.
        Value iv = lower_int(e);
        (void)iv;
        Insn in;
        in.op = Op::FConst;
        in.lanes = static_cast<std::uint8_t>(L);
        in.imm = static_cast<std::int64_t>(out_.fpool.size());
        for (int l = 0; l < L; ++l) out_.fpool.push_back(0.0);
        return emit_fp_pure(in, L, depth());
      }
    }
  }

  /// Destination for a counting floating op (never hoisted, never VN'd).
  Value alloc_arith_dst(int lanes, Insn in) {
    Value v;
    v.k = Value::K::VF;
    v.lanes = lanes;
    v.reg = alloc_vf_temp(lanes);
    v.temp = true;
    v.level = depth();
    in.dst = v.reg;
    emit(in);
    return v;
  }

  // ---- memory access lowering ----------------------------------------------

  /// Fills addressing fields from a lowered index value. Returns the index
  /// value so callers can release temps.
  void set_address(Insn& in, const Value& idx) {
    if (idx.k == Value::K::Const) {
      in.flags |= kImmAddr;
      in.imm = idx.cval;
    } else if (idx.k == Value::K::U) {
      in.flags |= kBUni;
      in.b = idx.reg;
    } else {
      in.b = idx.reg;
    }
  }

  Value lower_load_global(const ExprPtr& e) {
    check(e->kids.size() == 1, "compile: malformed load");
    check(e->arg >= 0 && e->arg < static_cast<int>(k_.args.size()),
          "compile: argument index out of range");
    const ArgInfo& arg = k_.args[static_cast<std::size_t>(e->arg)];
    check(arg.kind == ArgKind::GlobalPtr || arg.kind == ArgKind::GlobalConstPtr,
          "compile: global load from non-pointer argument " + arg.name);
    Value idx = lower_int(e->kids[0]);
    const int L = e->type.lanes;
    Insn in;
    in.op = Op::LoadG;
    in.a = e->arg;
    in.lanes = static_cast<std::uint8_t>(L);
    in.aux = arg.elem == Scalar::F32 ? kElemF32 : 0;
    if (masked()) in.flags |= kMasked;
    set_address(in, idx);
    return alloc_arith_dst(L, in);
  }

  Value lower_load_array(const ExprPtr& e) {
    check(e->kids.size() == 1, "compile: malformed load");
    const bool local = e->kind == ExprKind::LoadLocal;
    Value idx = lower_int(e->kids[0]);
    bool bad = false;
    const std::int32_t arr =
        array_id(e->slot, local ? AddrSpace::Local : AddrSpace::Private, &bad);
    const int L = e->type.lanes;
    if (bad) {
      emit_throw("interp: bad symbol slot");
      Insn in;
      in.op = Op::FConst;
      in.lanes = static_cast<std::uint8_t>(L);
      in.imm = static_cast<std::int64_t>(out_.fpool.size());
      for (int l = 0; l < L; ++l) out_.fpool.push_back(0.0);
      return emit_fp_pure(in, L, depth());
    }
    const ArrayRef& ref = out_.arrays[static_cast<std::size_t>(arr)];
    if (idx.k == Value::K::Const &&
        !(idx.cval >= 0 && idx.cval + L <= ref.len)) {
      // Constant out-of-range access: the tree evaluates the index then
      // throws at the load; emit the exact message.
      emit_throw(oob_message(ref, idx.cval, L, /*store=*/false));
      Insn in;
      in.op = Op::FConst;
      in.lanes = static_cast<std::uint8_t>(L);
      in.imm = static_cast<std::int64_t>(out_.fpool.size());
      for (int l = 0; l < L; ++l) out_.fpool.push_back(0.0);
      return emit_fp_pure(in, L, depth());
    }
    Insn in;
    in.op = local ? Op::LoadL : Op::LoadP;
    in.a = arr;
    in.lanes = static_cast<std::uint8_t>(e->type.lanes);
    in.aux = e->type.scalar == Scalar::F64 ? kCount8 : 0;
    if (masked()) in.flags |= kMasked;
    set_address(in, idx);
    return alloc_arith_dst(L, in);
  }

  static std::string oob_message(const ArrayRef& ref, std::int64_t idx,
                                 int lanes, bool store) {
    return strf("%s array '%s' %s out of range: index %lld + %d lanes, %zu "
                "elements",
                ref.local ? "local" : "private", ref.name.c_str(),
                store ? "store" : "load", static_cast<long long>(idx), lanes,
                static_cast<std::size_t>(ref.len));
  }

  // ---- statement lowering --------------------------------------------------

  void lower_stmt(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::Assign:
        lower_assign(s);
        break;
      case StmtKind::StorePrivate:
      case StmtKind::StoreLocal:
        lower_store_array(s);
        break;
      case StmtKind::StoreGlobal:
        lower_store_global(s);
        break;
      case StmtKind::For:
        lower_for(s);
        break;
      case StmtKind::If:
        lower_if(s);
        break;
      case StmtKind::Barrier: {
        Insn in;
        in.op = Op::Barrier;
        emit(in);
        break;
      }
      case StmtKind::Comment:
        break;
    }
  }

  void lower_assign(const StmtPtr& s) {
    if (!slot_in_range(s->slot)) {
      emit_throw("interp: bad symbol slot");
      return;
    }
    const Symbol& sym = k_.symbols[static_cast<std::size_t>(s->slot)];
    check(sym.array_len == 0,
          "compile: assignment to array symbol '" + sym.name + "'");
    VarBind& vb = vars_[static_cast<std::size_t>(s->slot)];
    if (s->a->type.is_fp()) {
      if (try_splat_lane_p(s, vb)) return;
      Value v = lower_fp(s->a, s->a->type.lanes);
      Insn in;
      in.op = Op::FMov;
      in.dst = vb.fbase;
      in.a = v.reg;
      in.b = kMaxLanes;
      in.c = static_cast<std::int32_t>(v.lanes);
      in.lanes = static_cast<std::uint8_t>(v.lanes);
      if (masked()) in.flags |= kMasked;
      emit(in);
      release(v);
      return;
    }
    Value v = lower_int(s->a);
    if (vb.uniform) {
      // The analysis only keeps a variable uniform when every assignment
      // is non-divergent with a structurally uniform RHS.
      const Value u = ureg(v);
      Insn in;
      in.op = Op::UMov;
      in.dst = vb.ireg;
      in.a = u.reg;
      emit(in);
      vb.cur = v.k == Value::K::Const ? v : u;
    } else {
      Insn in;
      if (v.k == Value::K::VI) {
        in.op = Op::VMov;
        in.a = v.reg;
      } else {
        const Value u = ureg(v);
        in.op = Op::VMovU;
        in.a = u.reg;
      }
      in.dst = vb.ireg;
      if (masked()) in.flags |= kMasked;
      emit(in);
      if (masked()) {
        // Items outside the mask keep their old value: reads after the
        // region must use the architectural register.
        invalidate_var(s->slot, depth());
      } else {
        vb.cur = v;
      }
    }
  }

  /// Strength reduction: `var = splat(lane(Apm[const], ln), L)` in
  /// non-divergent code fuses into one SplatLaneP writing the variable
  /// slab directly. Private-array loads and lane/splat movement carry no
  /// counters, so the fusion is observationally identical.
  bool try_splat_lane_p(const StmtPtr& s, VarBind& vb) {
    if (masked()) return false;
    const ExprPtr& sp = s->a;
    if (sp->kind != ExprKind::Splat || sp->kids.size() != 1) return false;
    const ExprPtr& ln = sp->kids[0];
    if (ln->kind != ExprKind::Lane || ln->kids.size() != 1) return false;
    const ExprPtr& ld = ln->kids[0];
    if (ld->kind != ExprKind::LoadPrivate || ld->kids.size() != 1)
      return false;
    if (!slot_in_range(ld->slot)) return false;
    const Symbol& arr_sym = k_.symbols[static_cast<std::size_t>(ld->slot)];
    if (arr_sym.array_len == 0 || arr_sym.space != AddrSpace::Private)
      return false;
    auto idx = const_eval(ld->kids[0]);
    if (!idx) return false;
    const int w = ld->type.lanes;
    if (ln->lane < 0 || ln->lane >= w) return false;
    if (*idx < 0 || *idx + w > arr_sym.array_len) return false;
    Insn in;
    in.op = Op::SplatLaneP;
    in.dst = vb.fbase;
    in.a = array_of_slot_.at(ld->slot);
    in.imm = *idx + ln->lane;
    in.lanes = static_cast<std::uint8_t>(sp->type.lanes);
    in.b = kMaxLanes;
    emit(in);
    return true;
  }

  void lower_store_array(const StmtPtr& s) {
    const bool local = s->kind == StmtKind::StoreLocal;
    if (!slot_in_range(s->slot)) {
      emit_throw("interp: bad symbol slot");
      return;
    }
    bool bad = false;
    const std::int32_t arr =
        array_id(s->slot, local ? AddrSpace::Local : AddrSpace::Private, &bad);
    const ArrayRef& ref = out_.arrays[static_cast<std::size_t>(arr)];
    Value idx = lower_int(s->a);
    if (!local && idx.k == Value::K::Const &&
        try_fma_pp(s, ref, arr, idx.cval))
      return;
    const int L = s->b->type.lanes;
    if (idx.k == Value::K::Const && !(idx.cval >= 0 && idx.cval + L <= ref.len)) {
      // The tree evaluates index, then value (counters fire), then throws
      // at the bounds check.
      Value v = lower_fp(s->b, L);
      release(v);
      emit_throw(oob_message(ref, idx.cval, L, /*store=*/true));
      return;
    }
    Value v = lower_fp(s->b, L);
    Insn in;
    in.op = local ? Op::StoreL : Op::StoreP;
    in.a = arr;
    in.c = v.reg;
    in.lanes = static_cast<std::uint8_t>(L);
    in.aux = s->b->type.scalar == Scalar::F64 ? kCount8 : 0;
    if (masked()) in.flags |= kMasked;
    set_address(in, idx);
    emit(in);
    release(v);
  }

  /// Strength reduction of the unrolled rank-1 update:
  /// `Cpm[ci] = mad(A, Bpm[bi], Cpm[ci])` with constant in-range private
  /// addresses fuses into FmaPP — one instruction per work-item iteration
  /// carrying the exact flop/mad counters of the tree's Mad evaluation.
  bool try_fma_pp(const StmtPtr& s, const ArrayRef& cref, std::int32_t carr,
                  std::int64_t ci) {
    if (masked()) return false;
    const ExprPtr& m = s->b;
    if (m->kind != ExprKind::Mad || m->kids.size() != 3) return false;
    const ExprPtr& b = m->kids[1];
    const ExprPtr& c = m->kids[2];
    if (b->kind != ExprKind::LoadPrivate || c->kind != ExprKind::LoadPrivate)
      return false;
    if (c->slot != s->slot) return false;
    auto bi = const_eval(b->kids.size() == 1 ? b->kids[0] : nullptr);
    auto ci2 = const_eval(c->kids.size() == 1 ? c->kids[0] : nullptr);
    if (!bi || !ci2 || *ci2 != ci) return false;
    const int L = m->type.lanes;
    if (b->type.lanes != L || c->type.lanes != L) return false;
    if (!slot_in_range(b->slot)) return false;
    const Symbol& bsym = k_.symbols[static_cast<std::size_t>(b->slot)];
    if (bsym.array_len == 0 || bsym.space != AddrSpace::Private) return false;
    if (*bi < 0 || *bi + L > bsym.array_len) return false;
    if (ci < 0 || ci + L > cref.len) return false;
    // The multiplicand may be any expression; a variable read skips the
    // normalization copy (the slab is read directly at its native width).
    const ExprPtr& a = m->kids[0];
    Value av;
    int stride;
    if (a->kind == ExprKind::VarRef && slot_in_range(a->slot) &&
        k_.symbols[static_cast<std::size_t>(a->slot)].array_len == 0) {
      av.k = Value::K::VF;
      av.reg = vars_[static_cast<std::size_t>(a->slot)].fbase;
      stride = kMaxLanes;
    } else {
      av = lower_fp(a, L);
      stride = L;
    }
    Insn in;
    in.op = Op::FmaPP;
    in.dst = static_cast<std::int32_t>(ci);
    in.a = carr;
    in.b = array_of_slot_.at(b->slot);
    in.c = av.reg;
    in.imm = *bi;
    in.lanes = static_cast<std::uint8_t>(L);
    in.aux = static_cast<std::uint8_t>((stride << 3) |
                                       round_flag(m->type.scalar));
    emit(in);
    release(av);
    return true;
  }

  void lower_store_global(const StmtPtr& s) {
    check(s->arg >= 0 && s->arg < static_cast<int>(k_.args.size()),
          "compile: argument index out of range");
    const ArgInfo& arg = k_.args[static_cast<std::size_t>(s->arg)];
    if (arg.kind != ArgKind::GlobalPtr) {
      // The tree checks writability before evaluating any operand.
      emit_throw("store to read-only/global-const argument " + arg.name);
      return;
    }
    Value idx = lower_int(s->a);
    const int L = s->b->type.lanes;
    Value v = lower_fp(s->b, L);
    Insn in;
    in.op = Op::StoreG;
    in.a = s->arg;
    in.c = v.reg;
    in.lanes = static_cast<std::uint8_t>(L);
    in.aux = arg.elem == Scalar::F32 ? kElemF32 : 0;
    if (masked()) in.flags |= kMasked;
    set_address(in, idx);
    emit(in);
    release(v);
  }

  void lower_if(const StmtPtr& s) {
    Value c = lower_int(s->a);
    if (c.k == Value::K::Const) {
      // A constant condition either always runs the body with the current
      // mask or always skips it.
      if (c.cval != 0)
        for (const auto& inner : s->body) lower_stmt(inner);
      return;
    }
    std::vector<int> assigned;
    collect_assigned(s->body, assigned);
    if (c.k == Value::K::U) {
      const Value cu = ureg(c);
      const std::int64_t jz = emit(jump(Op::JzU, cu.reg));
      open_if_frame();
      for (const auto& inner : s->body) lower_stmt(inner);
      close_if_frame();
      patch(frames_.back().body, jz, pos());
      for (int slot : assigned) invalidate_var(slot, depth());
      return;
    }
    const Value cv = vireg(c);
    Insn mp;
    mp.op = Op::MaskPush;
    mp.a = cv.reg;
    emit(mp);
    note_mask_depth();
    const std::int64_t jn = emit(jump(Op::JNone, 0));
    ++divergent_;
    open_if_frame();
    for (const auto& inner : s->body) lower_stmt(inner);
    close_if_frame();
    --divergent_;
    // Skip lands on the MaskPop so the mask is restored either way.
    patch(frames_.back().body, jn, pos());
    Insn pop;
    pop.op = Op::MaskPop;
    emit(pop);
    unnote_mask_depth();
    for (int slot : assigned) invalidate_var(slot, depth());
  }

  void lower_for(const StmtPtr& s) {
    if (!slot_in_range(s->slot)) {
      emit_throw("interp: bad symbol slot");
      return;
    }
    const Symbol& sym = k_.symbols[static_cast<std::size_t>(s->slot)];
    check(sym.array_len == 0,
          "compile: loop variable is array symbol '" + sym.name + "'");
    VarBind& vb = vars_[static_cast<std::size_t>(s->slot)];
    Value a = lower_int(s->a);
    Value b = lower_int(s->b);
    Value c = lower_int(s->c);
    const bool bounds_uniform = a.k != Value::K::VI && b.k != Value::K::VI &&
                                c.k != Value::K::VI && divergent_ == 0;
    std::int32_t cnt, lim, stp;
    std::int64_t forcheck = -1;
    if (bounds_uniform) {
      if (c.k == Value::K::Const && c.cval <= 0) {
        // Uniformity holds trivially, so the tree's next check fires.
        emit_throw("for: non-positive step");
        return;
      }
      if (a.k == Value::K::Const && b.k == Value::K::Const &&
          c.k == Value::K::Const && a.cval >= b.cval) {
        return;  // provably zero iterations, step already checked positive
      }
      const Value ua = ureg(a), ub = ureg(b), uc = ureg(c);
      if (c.k != Value::K::Const) {
        Insn sc;
        sc.op = Op::UStepCheck;
        sc.a = uc.reg;
        emit(sc);
      }
      cnt = fresh_u();
      lim = ub.reg;
      stp = uc.reg;
      Insn mv;
      mv.op = Op::UMov;
      mv.dst = cnt;
      mv.a = ua.reg;
      emit(mv);
    } else {
      const Value va = vireg(a), vb2 = vireg(b), vc = vireg(c);
      cnt = fresh_u();
      lim = fresh_u();
      stp = fresh_u();
      check(lim == cnt + 1 && stp == cnt + 2,
            "compile: ForCheckV register triple not consecutive");
      Insn fc;
      fc.op = Op::ForCheckV;
      fc.dst = cnt;
      fc.a = va.reg;
      fc.b = vb2.reg;
      fc.c = vc.reg;
      forcheck = emit(fc);
    }
    std::vector<int> assigned;
    collect_assigned(s->body, assigned);
    frames_.push_back(make_frame(Frame::Kind::Loop, depth() + 1));
    const int body_depth = frames_.back().depth;
    for (int slot : assigned) invalidate_var(slot, body_depth);
    // Body reads of the loop variable forward the uniform counter (its
    // value is group-uniform even in the varying-bounds case — verified).
    Value cur;
    cur.k = Value::K::U;
    cur.reg = cnt;
    cur.level = body_depth;
    cur.vn = fresh_vn();
    vb.cur = cur;
    // Architectural per-iteration write so post-loop reads observe the
    // last executed induction value (the tree leaves it there).
    {
      Insn mv;
      if (vb.uniform) {
        mv.op = Op::UMov;
      } else {
        mv.op = Op::VMovU;
        if (divergent_ > 0) mv.flags |= kMasked;
      }
      mv.dst = vb.ireg;
      mv.a = cnt;
      emit(mv);
    }
    for (const auto& inner : s->body) lower_stmt(inner);
    Frame body = std::move(frames_.back());
    frames_.pop_back();
    // Assemble: [head: exit test] body [advance; jump head] exit.
    const std::int64_t head = pos();
    Insn jge;
    jge.op = Op::JgeU;
    jge.a = cnt;
    jge.b = lim;
    const std::int64_t exit_jump = emit(jge);
    append_stream(std::move(body.body));
    Insn add;
    add.op = Op::UAdd;
    add.dst = cnt;
    add.a = cnt;
    add.b = stp;
    emit(add);
    Insn back;
    back.op = Op::Jmp;
    back.imm = head;
    emit(back);
    patch(frames_.back().body, exit_jump, pos());
    if (forcheck >= 0) patch(frames_.back().body, forcheck, pos());
    for (int slot : assigned) invalidate_var(slot, depth());
    invalidate_var(s->slot, depth());
  }

  const Kernel& k_;
  Analysis analysis_;
  CompiledKernel out_;
  std::vector<Frame> frames_;
  std::vector<VarBind> vars_;
  std::map<int, std::int32_t> array_of_slot_;
  std::map<std::int64_t, int> const_vns_;
  std::map<int, std::vector<std::int32_t>> vf_free_;
  int n_u_ = 0, n_vi_ = 0, n_vf_ = 0;
  int next_vn_ = 1;
  int divergent_ = 0;
  int mask_depth_ = 0;
};

// ---- compiled-program cache ------------------------------------------------

// One entry per distinct kernel serialization, holding every compiled form
// of that kernel: the bytecode program and (once the native backend has
// visited it) its dlopen'd shared object or a sticky failure marker. The
// entries sit on an LRU list bounded by GEMMTUNE_PROGRAM_CACHE_MAX so a
// fuzzer streaming thousands of distinct kernels cannot grow the cache
// without bound; the shared_ptrs keep any in-flight program alive across
// its own eviction.
struct CacheEntry {
  CompiledKernelPtr bytecode;  ///< null when created by a native store
  NativeKernelPtr native;
  bool native_failed = false;
  bool native_present = false;
  std::list<std::string>::iterator lru;  ///< position in g_lru
};

std::mutex g_cache_mutex;
std::size_t g_cache_max_override = 0;  // 0 = use the environment/default

std::unordered_map<std::string, CacheEntry>& cache_map() {
  static auto* m = new std::unordered_map<std::string, CacheEntry>();
  return *m;
}
std::list<std::string>& lru_list() {  // front = most recently used
  static auto* l = new std::list<std::string>();
  return *l;
}

std::size_t cache_capacity() {
  if (g_cache_max_override > 0) return g_cache_max_override;
  static const std::size_t from_env = [] {
    std::size_t cap = 256;
    if (const char* s = std::getenv("GEMMTUNE_PROGRAM_CACHE_MAX")) {
      char* end = nullptr;
      const long long v = std::strtoll(s, &end, 10);
      if (end != s && *end == '\0' && v > 0)
        cap = static_cast<std::size_t>(v);
    }
    return cap;
  }();
  return from_env;
}

// Callers hold g_cache_mutex. Touches move the entry to the LRU front;
// inserts evict from the back once over capacity.
void lru_touch(CacheEntry& e) {
  lru_list().splice(lru_list().begin(), lru_list(), e.lru);
}

CacheEntry& lru_insert(const std::string& key) {
  auto& map = cache_map();
  while (map.size() >= cache_capacity() && !lru_list().empty()) {
    map.erase(lru_list().back());
    lru_list().pop_back();
    if (trace::enabled()) trace::counter_add("interp.cache_evict", 1);
  }
  lru_list().push_front(key);
  CacheEntry& e = map[key];
  e.lru = lru_list().begin();
  return e;
}

}  // namespace

std::string serialize_kernel(const Kernel& kernel) {
  std::string out = "gemmtune-kir-v1";
  put_str(out, kernel.name);
  put_u8(out, static_cast<unsigned>(kernel.precision));
  put_i64(out, kernel.reqd_local[0]);
  put_i64(out, kernel.reqd_local[1]);
  put_i64(out, static_cast<std::int64_t>(kernel.args.size()));
  for (const ArgInfo& a : kernel.args) {
    put_str(out, a.name);
    put_u8(out, static_cast<unsigned>(a.kind));
    put_u8(out, static_cast<unsigned>(a.elem));
  }
  put_i64(out, static_cast<std::int64_t>(kernel.symbols.size()));
  for (const Symbol& s : kernel.symbols) {
    put_str(out, s.name);
    put_type(out, s.type);
    put_i64(out, s.array_len);
    put_u8(out, static_cast<unsigned>(s.space));
    put_i64(out, s.storage);
  }
  put_i64(out, static_cast<std::int64_t>(kernel.body.size()));
  for (const StmtPtr& s : kernel.body) ser_stmt(out, s);
  return out;
}

CompiledKernelPtr compile(const Kernel& kernel) {
  Compiler c(kernel);
  return std::make_shared<const CompiledKernel>(c.run());
}

CompiledKernelPtr get_or_compile(const Kernel& kernel) {
  const std::string key = serialize_kernel(kernel);
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    auto it = cache_map().find(key);
    if (it != cache_map().end() && it->second.bytecode) {
      if (trace::enabled()) trace::counter_add("interp.cache_hit", 1);
      lru_touch(it->second);
      return it->second.bytecode;
    }
  }
  if (trace::enabled()) {
    trace::counter_add("interp.cache_miss", 1);
    trace::counter_add("interp.compiles", 1);
  }
  CompiledKernelPtr prog;
  {
    trace::Span span("interp.compile");
    prog = compile(kernel);
  }
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache_map().find(key);
  if (it == cache_map().end()) {
    lru_insert(key).bytecode = prog;
    return prog;
  }
  lru_touch(it->second);
  if (!it->second.bytecode) it->second.bytecode = prog;
  return it->second.bytecode;  // first insert wins under concurrency
}

NativeSlot native_cache_lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache_map().find(key);
  NativeSlot slot;
  if (it == cache_map().end()) return slot;
  lru_touch(it->second);
  slot.kernel = it->second.native;
  slot.failed = it->second.native_failed;
  slot.present = it->second.native_present;
  return slot;
}

NativeKernelPtr native_cache_store(const std::string& key,
                                   NativeKernelPtr kernel, bool failed) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache_map().find(key);
  CacheEntry& e = it == cache_map().end() ? lru_insert(key) : it->second;
  if (it != cache_map().end()) lru_touch(e);
  if (!e.native_present) {  // first outcome wins, like get_or_compile
    e.native = std::move(kernel);
    e.native_failed = failed;
    e.native_present = true;
  }
  return e.native;
}

void set_program_cache_max(std::size_t cap) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  g_cache_max_override = cap;
  auto& map = cache_map();
  while (cache_capacity() < map.size() && !lru_list().empty()) {
    map.erase(lru_list().back());
    lru_list().pop_back();
    if (trace::enabled()) trace::counter_add("interp.cache_evict", 1);
  }
}

std::size_t compiled_cache_size() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  return cache_map().size();
}

void compiled_cache_clear() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  cache_map().clear();
  lru_list().clear();
}

}  // namespace gemmtune::ir
