// Lockstep work-group interpreter for IR kernels.
//
// Executes a kernel over a two-dimensional NDRange against SimCL buffers,
// with OpenCL memory semantics:
//  * private variables / arrays per work-item,
//  * local arrays per work-group,
//  * global memory = SimCL buffers.
//
// Work-groups are independent (OpenCL barriers are intra-group only), so
// the interpreter partitions the group space across a thread pool; within a
// group, every statement executes across all work-items before the next
// statement ("lockstep"). This is a valid execution of any kernel whose
// loop bounds are work-group uniform
// and whose barriers are in uniform control flow — exactly the shape of the
// paper's generated GEMM kernels. The interpreter *verifies* loop-bound
// uniformity at run time and rejects non-uniform loops, so the restriction
// is checked, not assumed.
//
// Single-precision kernels round every arithmetic result to float, so the
// interpreter bit-matches what an SP device would compute (modulo fma
// contraction, which mad() permits anyway).
//
// The interpreter also counts dynamic work: flops, bytes moved per address
// space, barrier executions. These counters anchor the analytic performance
// model (tests cross-check the model's static formulas against them).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kernelir/kernel.hpp"
#include "simcl/runtime.hpp"

namespace gemmtune::ir {

/// One bound kernel argument: a buffer for pointer args, or a scalar.
struct ArgValue {
  simcl::BufferPtr buffer;  ///< set for GlobalPtr / GlobalConstPtr args
  std::int64_t i = 0;       ///< set for Int args
  double f = 0;             ///< set for Float args

  static ArgValue of(simcl::BufferPtr b) { return {std::move(b), 0, 0}; }
  static ArgValue of_int(std::int64_t v) { return {nullptr, v, 0}; }
  static ArgValue of_float(double v) { return {nullptr, 0, v}; }
};

/// Dynamic execution counters accumulated over a launch.
struct Counters {
  std::uint64_t flops = 0;              ///< floating ops (mad = 2)
  std::uint64_t mads = 0;               ///< mad instructions executed
  std::uint64_t global_load_bytes = 0;
  std::uint64_t global_store_bytes = 0;
  std::uint64_t local_load_bytes = 0;
  std::uint64_t local_store_bytes = 0;
  std::uint64_t barriers = 0;           ///< per work-group barrier executions
  std::uint64_t work_groups = 0;
  std::uint64_t work_items = 0;

  bool operator==(const Counters&) const = default;
};

/// Interpreter backend. `Bytecode` compiles the kernel to a flat register
/// program via a process-wide compiled-kernel cache (compile.hpp) and runs
/// it on the VM (vm.hpp); `Tree` walks the expression tree directly and is
/// kept as the reference semantics; `Native` JIT-compiles the bytecode to
/// a specialized C++ shared object via the host toolchain (native.hpp) and
/// falls back to Bytecode — with an interp.native_fallback counter and a
/// one-line warning naming the cause — when no toolchain or cache object
/// is usable. All backends produce bit-identical buffers and counters at
/// any thread count. `Auto` resolves, in priority order: the process-wide
/// override (the CLI --interp flag), the GEMMTUNE_INTERP environment
/// variable ("tree" / "bytecode" / "native"), then Bytecode.
enum class Backend { Auto, Tree, Bytecode, Native };

/// Sets the process-wide backend override (Auto clears it).
void set_backend_override(Backend b);

/// Resolves `requested` against the override / environment / default.
Backend resolve_backend(Backend requested);

/// Backend name as the CLI / GEMMTUNE_INTERP spell it ("auto" for Auto);
/// reports record the resolved name in their meta block.
const char* to_string(Backend b);

/// Executes `kernel` over `global` work-items in groups of `local`.
/// `global[d]` must be a positive multiple of `local[d]`; when the kernel
/// declares a required work-group size it must match `local`. Throws
/// gemmtune::Error on malformed kernels, out-of-range accesses, or
/// non-uniform loop bounds. Returns the dynamic counters.
///
/// `threads` > 0 forces that many interpreter threads; 0 uses the
/// process-wide configuration (--threads / GEMMTUNE_THREADS / hardware).
/// Work-groups partition across threads, each with its own execution
/// arena (work-item registers, private/local arrays, counters); only the
/// argument buffers are shared, and distinct work-groups of a well-formed
/// kernel write disjoint buffer elements (overlapping group writes race on
/// a real device too). Buffers and counters are bit-identical to the
/// serial run for every thread count and for both backends. Concurrent
/// launch() calls from different threads are safe as long as their
/// writable buffers are disjoint.
///
/// On malformed launches both backends throw gemmtune::Error with the same
/// message text (modulo the source-location prefix); when several
/// work-items fault inside one statement the backends may report a
/// different faulting instance, and buffer contents after a throw are
/// unspecified.
Counters launch(const Kernel& kernel, std::array<std::int64_t, 2> global,
                std::array<std::int64_t, 2> local,
                const std::vector<ArgValue>& args, int threads = 0);

/// launch() with an explicit backend choice (tests and benchmarks).
Counters launch_with_backend(const Kernel& kernel,
                             std::array<std::int64_t, 2> global,
                             std::array<std::int64_t, 2> local,
                             const std::vector<ArgValue>& args, int threads,
                             Backend backend);

}  // namespace gemmtune::ir
