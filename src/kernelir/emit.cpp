#include "kernelir/emit.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::ir {

namespace {

const char* binop_token(BinOp op) {
  switch (op) {
    case BinOp::Add:
    case BinOp::FAdd: return "+";
    case BinOp::Sub:
    case BinOp::FSub: return "-";
    case BinOp::Mul:
    case BinOp::FMul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::And: return "&&";
  }
  return "?";
}

const char* builtin_name(BuiltinFn fn) {
  switch (fn) {
    case BuiltinFn::GroupId: return "get_group_id";
    case BuiltinFn::LocalId: return "get_local_id";
    case BuiltinFn::GlobalId: return "get_global_id";
    case BuiltinFn::LocalSize: return "get_local_size";
    case BuiltinFn::NumGroups: return "get_num_groups";
  }
  return "?";
}

char lane_char(int lane) {
  // OpenCL component letters: .s0 ... .s9, .sa ... .sf
  return lane < 10 ? static_cast<char>('0' + lane)
                   : static_cast<char>('a' + lane - 10);
}

class Emitter {
 public:
  explicit Emitter(const Kernel& k) : k_(k) {}

  std::string expr(const ExprPtr& e) const {
    check(e != nullptr, "emit: null expression");
    switch (e->kind) {
      case ExprKind::IntLit:
        return std::to_string(e->ival);
      case ExprKind::FpLit: {
        std::string lit = strf("%g", e->fval);
        if (lit.find('.') == std::string::npos &&
            lit.find('e') == std::string::npos)
          lit += ".0";
        if (e->type.scalar == Scalar::F32) lit += "f";
        if (e->type.lanes > 1)
          return "((" + ocl_name(e->type) + ")(" + lit + "))";
        return lit;
      }
      case ExprKind::VarRef:
        return sym(e->slot).name;
      case ExprKind::ArgRef:
        return k_.args[static_cast<std::size_t>(e->arg)].name;
      case ExprKind::Builtin:
        return strf("(int)%s(%d)", builtin_name(e->bfn), e->dim);
      case ExprKind::Bin:
        return "(" + expr(e->kids[0]) + " " + binop_token(e->bop) + " " +
               expr(e->kids[1]) + ")";
      case ExprKind::Mad:
        return "mad(" + expr(e->kids[0]) + ", " + expr(e->kids[1]) + ", " +
               expr(e->kids[2]) + ")";
      case ExprKind::Splat:
        return "((" + ocl_name(e->type) + ")(" + expr(e->kids[0]) + "))";
      case ExprKind::Lane:
        return "(" + expr(e->kids[0]) + ").s" +
               std::string(1, lane_char(e->lane));
      case ExprKind::LoadGlobal:
        return load_text(k_.args[static_cast<std::size_t>(e->arg)].name, e);
      case ExprKind::LoadLocal:
      case ExprKind::LoadPrivate:
        return load_text(sym(e->slot).name, e);
      case ExprKind::Select:
        return "(" + expr(e->kids[0]) + " ? " + expr(e->kids[1]) + " : " +
               expr(e->kids[2]) + ")";
    }
    fail("emit: bad expression kind");
  }

  void stmt(const StmtPtr& s, int depth) {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (s->kind) {
      case StmtKind::Assign:
        line(pad + sym(s->slot).name + " = " + expr(s->a) + ";");
        break;
      case StmtKind::StorePrivate:
      case StmtKind::StoreLocal:
        line(pad + store_text(sym(s->slot).name, s));
        break;
      case StmtKind::StoreGlobal:
        line(pad +
             store_text(k_.args[static_cast<std::size_t>(s->arg)].name, s));
        break;
      case StmtKind::For: {
        const std::string v = sym(s->slot).name;
        line(pad + "for (" + v + " = " + expr(s->a) + "; " + v + " < " +
             expr(s->b) + "; " + v + " += " + expr(s->c) + ") {");
        for (const auto& inner : s->body) stmt(inner, depth + 1);
        line(pad + "}");
        break;
      }
      case StmtKind::If: {
        line(pad + "if (" + expr(s->a) + ") {");
        for (const auto& inner : s->body) stmt(inner, depth + 1);
        line(pad + "}");
        break;
      }
      case StmtKind::Barrier:
        line(pad + "barrier(CLK_LOCAL_MEM_FENCE);");
        break;
      case StmtKind::Comment:
        line(pad + "/* " + s->text + " */");
        break;
    }
  }

  std::string run() {
    if (k_.precision == Scalar::F64)
      line("#pragma OPENCL EXTENSION cl_khr_fp64 : enable");
    line("");
    std::string attr;
    if (k_.reqd_local[0] > 0)
      attr = strf("__attribute__((reqd_work_group_size(%lld, %lld, 1)))\n",
                  static_cast<long long>(k_.reqd_local[0]),
                  static_cast<long long>(k_.reqd_local[1]));
    std::vector<std::string> params;
    for (const auto& a : k_.args) {
      switch (a.kind) {
        case ArgKind::GlobalPtr:
          params.push_back("__global " + ocl_name({a.elem, 1}) + "* " +
                           a.name);
          break;
        case ArgKind::GlobalConstPtr:
          params.push_back("__global const " + ocl_name({a.elem, 1}) + "* " +
                           a.name);
          break;
        case ArgKind::Int:
          params.push_back("const int " + a.name);
          break;
        case ArgKind::Float:
          params.push_back("const " + ocl_name({a.elem, 1}) + " " + a.name);
          break;
      }
    }
    line("__kernel " + attr + "void " + k_.name + "(" + join(params, ", ") +
         ")");
    line("{");
    // Declarations: local arrays first, then private arrays, then variables.
    for (const auto& sym : k_.symbols) {
      if (sym.array_len > 0 && sym.space == AddrSpace::Local)
        line(strf("  __local %s %s[%d];", ocl_name(sym.type).c_str(),
                  sym.name.c_str(), sym.array_len));
    }
    for (const auto& sym : k_.symbols) {
      if (sym.array_len > 0 && sym.space == AddrSpace::Private)
        line(strf("  %s %s[%d];", ocl_name(sym.type).c_str(),
                  sym.name.c_str(), sym.array_len));
    }
    for (const auto& sym : k_.symbols) {
      if (sym.array_len == 0)
        line("  " + ocl_name(sym.type) + " " + sym.name + ";");
    }
    line("");
    for (const auto& s : k_.body) stmt(s, 1);
    line("}");
    return std::move(out_);
  }

 private:
  const Symbol& sym(int slot) const {
    check(slot >= 0 && slot < static_cast<int>(k_.symbols.size()),
          "emit: bad symbol slot");
    return k_.symbols[static_cast<std::size_t>(slot)];
  }

  std::string load_text(const std::string& base, const ExprPtr& e) const {
    const std::string idx = expr(e->kids[0]);
    if (e->type.lanes == 1) return base + "[" + idx + "]";
    return strf("vload%d(0, %s + %s)", e->type.lanes, base.c_str(),
                idx.c_str());
  }

  std::string store_text(const std::string& base, const StmtPtr& s) const {
    const std::string idx = expr(s->a);
    const std::string val = expr(s->b);
    if (s->b->type.lanes == 1) return base + "[" + idx + "] = " + val + ";";
    return strf("vstore%d(%s, 0, %s + %s);", s->b->type.lanes, val.c_str(),
                base.c_str(), idx.c_str());
  }

  void line(const std::string& s) {
    out_ += s;
    out_ += '\n';
  }

  const Kernel& k_;
  std::string out_;
};

}  // namespace

std::string emit_opencl(const Kernel& kernel) { return Emitter(kernel).run(); }

std::string emit_expr(const Kernel& kernel, const ExprPtr& e) {
  return Emitter(kernel).expr(e);
}

}  // namespace gemmtune::ir
