#include "kernelir/interp.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/compile.hpp"
#include "kernelir/native.hpp"
#include "kernelir/vm.hpp"
#include "trace/trace.hpp"

namespace gemmtune::ir {

namespace {

/// Runtime value: an int scalar or up to kMaxLanes floating lanes.
struct Val {
  Type t;
  std::int64_t i = 0;
  std::array<double, kMaxLanes> f{};
};

/// Rounds `v` through the storage precision of `s`.
inline double round_fp(double v, Scalar s) {
  return s == Scalar::F32 ? static_cast<double>(static_cast<float>(v)) : v;
}

// One interpreter execution context. A Machine owns all mutable per-group
// scratch state (work-item registers, private/local arrays, divergence
// mask, counters), so work-group parallelism is expressed by giving each
// worker thread its *own* Machine over a disjoint slice of the group space:
// threads then share only the kernel, the launch geometry, and the global
// buffers — and distinct work-groups of a well-formed kernel write disjoint
// buffer elements (concurrent groups race on a real device otherwise).
class Machine {
 public:
  // The plan carries the validated geometry and storage counts, so
  // constructing a per-worker Machine only allocates scratch (no repeated
  // validation or symbol-table walks per thread).
  explicit Machine(const LaunchPlan& plan)
      : k_(*plan.kernel),
        global_(plan.global),
        local_(plan.local),
        args_(*plan.args),
        items_per_group_(plan.items_per_group),
        n_vars_(plan.n_vars),
        n_parrays_(plan.n_parrays),
        n_larrays_(plan.n_larrays) {}

  /// Runs work-groups [begin, end) of the row-major linearized group space
  /// (group g = (g % ngx, g / ngx)) and returns the counters this Machine
  /// accumulated over them.
  Counters run_range(std::int64_t begin, std::int64_t end) {
    const std::int64_t ngx = global_[0] / local_[0];
    for (std::int64_t g = begin; g < end; ++g) {
      run_group(g % ngx, g / ngx);
    }
    return counters_;
  }

 private:
  // ---- per-group execution --------------------------------------------------

  struct Item {
    std::int64_t lx, ly;
    std::vector<Val> vars;
    std::vector<std::vector<double>> parrays;
  };

  void run_group(std::int64_t gx, std::int64_t gy) {
    gx_ = gx;
    gy_ = gy;
    // Local arrays: shared across the group, zero-initialized per launch
    // semantics are *not* guaranteed by OpenCL, but generated kernels fully
    // initialize what they read; zero-filling makes accidental reads
    // deterministic and testable.
    larrays_.assign(static_cast<std::size_t>(n_larrays_), {});
    for (const auto& sym : k_.symbols) {
      if (sym.array_len > 0 && sym.space == AddrSpace::Local)
        larrays_[static_cast<std::size_t>(sym.storage)].assign(
            static_cast<std::size_t>(sym.array_len), 0.0);
    }
    items_.assign(static_cast<std::size_t>(items_per_group_), Item{});
    active_.assign(static_cast<std::size_t>(items_per_group_), 1);
    std::size_t t = 0;
    for (std::int64_t ly = 0; ly < local_[1]; ++ly) {
      for (std::int64_t lx = 0; lx < local_[0]; ++lx, ++t) {
        Item& it = items_[t];
        it.lx = lx;
        it.ly = ly;
        it.vars.assign(static_cast<std::size_t>(n_vars_), Val{});
        it.parrays.assign(static_cast<std::size_t>(n_parrays_), {});
        for (const auto& sym : k_.symbols) {
          if (sym.array_len > 0 && sym.space == AddrSpace::Private)
            it.parrays[static_cast<std::size_t>(sym.storage)].assign(
                static_cast<std::size_t>(sym.array_len), 0.0);
        }
      }
    }
    for (const auto& s : k_.body) exec(s);
  }

  // ---- statement execution (lockstep) ---------------------------------------

  void exec(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::Assign: {
        const Symbol& sym = symbol(s->slot);
        for (std::size_t t = 0; t < items_.size(); ++t) {
          if (!active_[t]) continue;
          Item& it = items_[t];
          it.vars[static_cast<std::size_t>(sym.storage)] = eval(s->a, it);
        }
        break;
      }
      case StmtKind::StorePrivate: {
        const Symbol& sym = symbol(s->slot);
        for (std::size_t t = 0; t < items_.size(); ++t) {
          if (!active_[t]) continue;
          Item& it = items_[t];
          const Val idx = eval(s->a, it);
          const Val v = eval(s->b, it);
          auto& arr = it.parrays[static_cast<std::size_t>(sym.storage)];
          store_to(arr, idx.i, v, sym, /*local=*/false);
        }
        break;
      }
      case StmtKind::StoreLocal: {
        const Symbol& sym = symbol(s->slot);
        for (std::size_t t = 0; t < items_.size(); ++t) {
          if (!active_[t]) continue;
          Item& it = items_[t];
          const Val idx = eval(s->a, it);
          const Val v = eval(s->b, it);
          auto& arr = larrays_[static_cast<std::size_t>(sym.storage)];
          store_to(arr, idx.i, v, sym, /*local=*/true);
        }
        break;
      }
      case StmtKind::StoreGlobal: {
        const ArgInfo& arg = k_.args[static_cast<std::size_t>(s->arg)];
        check(arg.kind == ArgKind::GlobalPtr,
              "store to read-only/global-const argument " + arg.name);
        for (std::size_t t = 0; t < items_.size(); ++t) {
          if (!active_[t]) continue;
          Item& it = items_[t];
          const Val idx = eval(s->a, it);
          const Val v = eval(s->b, it);
          global_store(*args_[static_cast<std::size_t>(s->arg)].buffer,
                       arg.elem, idx.i, v);
        }
        break;
      }
      case StmtKind::For:
        exec_for(s);
        break;
      case StmtKind::If: {
        // Masked divergence: deactivate items whose condition is false,
        // run the body, restore. A real device predicates the same way.
        const std::vector<char> saved = active_;
        for (std::size_t t = 0; t < items_.size(); ++t) {
          if (!active_[t]) continue;
          active_[t] = eval(s->a, items_[t]).i != 0 ? 1 : 0;
        }
        bool any = false;
        for (char a : active_) any = any || a != 0;
        if (any) {
          for (const auto& inner : s->body) exec(inner);
        }
        active_ = saved;
        break;
      }
      case StmtKind::Barrier:
        // Every *active* item has reached this statement under lockstep;
        // a barrier inside a divergent region is undefined behaviour on a
        // real device, so reject it.
        for (char a : active_)
          check(a != 0, "barrier inside divergent control flow");
        ++counters_.barriers;
        break;
      case StmtKind::Comment:
        break;
    }
  }

  void exec_for(const StmtPtr& s) {
    const Symbol& sym = symbol(s->slot);
    // Evaluate bounds in every active item and require uniformity: a
    // barrier inside a non-uniform loop would be undefined behaviour on a
    // real device.
    std::size_t first = items_.size();
    for (std::size_t t = 0; t < items_.size(); ++t) {
      if (active_[t]) {
        first = t;
        break;
      }
    }
    if (first == items_.size()) return;  // fully inactive region
    const Val init0 = eval(s->a, items_[first]);
    const Val limit0 = eval(s->b, items_[first]);
    const Val step0 = eval(s->c, items_[first]);
    for (std::size_t t = first; t < items_.size(); ++t) {
      if (!active_[t]) continue;
      Item& it = items_[t];
      check(eval(s->a, it).i == init0.i && eval(s->b, it).i == limit0.i &&
                eval(s->c, it).i == step0.i,
            "for: non-uniform loop bounds across work-group");
    }
    check(step0.i > 0, "for: non-positive step");
    for (std::int64_t v = init0.i; v < limit0.i; v += step0.i) {
      for (std::size_t t = 0; t < items_.size(); ++t) {
        if (!active_[t]) continue;
        Val& var =
            items_[t].vars[static_cast<std::size_t>(sym.storage)];
        var.t = i32();
        var.i = v;
      }
      for (const auto& inner : s->body) exec(inner);
    }
  }

  // ---- expression evaluation -------------------------------------------------

  Val eval(const ExprPtr& e, Item& it) {
    switch (e->kind) {
      case ExprKind::IntLit: {
        Val v;
        v.t = e->type;
        v.i = e->ival;
        return v;
      }
      case ExprKind::FpLit: {
        Val v;
        v.t = e->type;
        const double x = round_fp(e->fval, e->type.scalar);
        for (int l = 0; l < e->type.lanes; ++l)
          v.f[static_cast<std::size_t>(l)] = x;
        return v;
      }
      case ExprKind::VarRef:
        return it.vars[static_cast<std::size_t>(symbol(e->slot).storage)];
      case ExprKind::ArgRef: {
        const ArgValue& a = args_[static_cast<std::size_t>(e->arg)];
        Val v;
        v.t = e->type;
        if (e->type.is_fp()) {
          v.f[0] = round_fp(a.f, e->type.scalar);
        } else {
          v.i = a.i;
        }
        return v;
      }
      case ExprKind::Builtin: {
        Val v;
        v.t = i32();
        v.i = builtin_value(e->bfn, e->dim, it);
        return v;
      }
      case ExprKind::Bin:
        return eval_bin(e, it);
      case ExprKind::Mad: {
        const Val a = eval(e->kids[0], it);
        const Val b = eval(e->kids[1], it);
        const Val c = eval(e->kids[2], it);
        Val v;
        v.t = e->type;
        for (int l = 0; l < e->type.lanes; ++l) {
          const auto u = static_cast<std::size_t>(l);
          v.f[u] = round_fp(a.f[u] * b.f[u] + c.f[u], e->type.scalar);
        }
        counters_.flops += 2u * static_cast<std::uint64_t>(e->type.lanes);
        ++counters_.mads;
        return v;
      }
      case ExprKind::Splat: {
        const Val s = eval(e->kids[0], it);
        Val v;
        v.t = e->type;
        for (int l = 0; l < e->type.lanes; ++l)
          v.f[static_cast<std::size_t>(l)] = s.f[0];
        return v;
      }
      case ExprKind::Lane: {
        const Val s = eval(e->kids[0], it);
        Val v;
        v.t = e->type;
        v.f[0] = s.f[static_cast<std::size_t>(e->lane)];
        return v;
      }
      case ExprKind::LoadGlobal: {
        const Val idx = eval(e->kids[0], it);
        const ArgInfo& arg = k_.args[static_cast<std::size_t>(e->arg)];
        return global_load(*args_[static_cast<std::size_t>(e->arg)].buffer,
                           arg.elem, idx.i, e->type);
      }
      case ExprKind::LoadLocal: {
        const Val idx = eval(e->kids[0], it);
        const Symbol& sym = symbol(e->slot);
        return array_load(larrays_[static_cast<std::size_t>(sym.storage)],
                          idx.i, e->type, sym, /*local=*/true);
      }
      case ExprKind::LoadPrivate: {
        const Val idx = eval(e->kids[0], it);
        const Symbol& sym = symbol(e->slot);
        return array_load(it.parrays[static_cast<std::size_t>(sym.storage)],
                          idx.i, e->type, sym, /*local=*/false);
      }
      case ExprKind::Select: {
        // Short-circuit: only the taken branch is evaluated, so guarded
        // loads never touch out-of-bounds addresses.
        const Val cond = eval(e->kids[0], it);
        return eval(e->kids[cond.i != 0 ? 1 : 2], it);
      }
    }
    fail("interp: bad expression kind");
  }

  Val eval_bin(const ExprPtr& e, Item& it) {
    const Val a = eval(e->kids[0], it);
    const Val b = eval(e->kids[1], it);
    Val v;
    v.t = e->type;
    switch (e->bop) {
      case BinOp::Add: v.i = a.i + b.i; return v;
      case BinOp::Sub: v.i = a.i - b.i; return v;
      case BinOp::Mul: v.i = a.i * b.i; return v;
      case BinOp::Div:
        check(b.i != 0, "interp: integer division by zero");
        v.i = a.i / b.i;
        return v;
      case BinOp::Mod:
        check(b.i != 0, "interp: integer modulo by zero");
        v.i = a.i % b.i;
        return v;
      case BinOp::Lt:
        v.i = a.i < b.i ? 1 : 0;
        return v;
      case BinOp::And:
        v.i = (a.i != 0 && b.i != 0) ? 1 : 0;
        return v;
      case BinOp::FAdd:
      case BinOp::FSub:
      case BinOp::FMul: {
        for (int l = 0; l < e->type.lanes; ++l) {
          const auto u = static_cast<std::size_t>(l);
          double r = 0;
          if (e->bop == BinOp::FAdd) r = a.f[u] + b.f[u];
          if (e->bop == BinOp::FSub) r = a.f[u] - b.f[u];
          if (e->bop == BinOp::FMul) r = a.f[u] * b.f[u];
          v.f[u] = round_fp(r, e->type.scalar);
        }
        counters_.flops += static_cast<std::uint64_t>(e->type.lanes);
        return v;
      }
    }
    fail("interp: bad binary op");
  }

  std::int64_t builtin_value(BuiltinFn fn, int dim, const Item& it) const {
    const std::int64_t lid = dim == 0 ? it.lx : it.ly;
    const std::int64_t gid = dim == 0 ? gx_ : gy_;
    const std::int64_t lsz = local_[static_cast<std::size_t>(dim)];
    const std::int64_t gsz = global_[static_cast<std::size_t>(dim)];
    switch (fn) {
      case BuiltinFn::GroupId: return gid;
      case BuiltinFn::LocalId: return lid;
      case BuiltinFn::GlobalId: return gid * lsz + lid;
      case BuiltinFn::LocalSize: return lsz;
      case BuiltinFn::NumGroups: return gsz / lsz;
    }
    fail("interp: bad builtin");
  }

  // ---- memory access ----------------------------------------------------------

  Val global_load(const simcl::Buffer& buf, Scalar elem, std::int64_t idx,
                  Type t) {
    const std::int64_t n =
        static_cast<std::int64_t>(buf.size()) / scalar_bytes(elem);
    check(idx >= 0 && idx + t.lanes <= n,
          strf("global load out of range: index %lld + %d lanes, buffer %lld "
               "elements",
               static_cast<long long>(idx), t.lanes,
               static_cast<long long>(n)));
    Val v;
    v.t = t;
    for (int l = 0; l < t.lanes; ++l) {
      const auto u = static_cast<std::size_t>(idx + l);
      v.f[static_cast<std::size_t>(l)] =
          elem == Scalar::F64 ? buf.as<double>()[u]
                              : static_cast<double>(buf.as<float>()[u]);
    }
    counters_.global_load_bytes +=
        static_cast<std::uint64_t>(t.lanes) *
        static_cast<std::uint64_t>(scalar_bytes(elem));
    return v;
  }

  void global_store(simcl::Buffer& buf, Scalar elem, std::int64_t idx,
                    const Val& v) {
    const std::int64_t n =
        static_cast<std::int64_t>(buf.size()) / scalar_bytes(elem);
    check(idx >= 0 && idx + v.t.lanes <= n,
          strf("global store out of range: index %lld + %d lanes, buffer "
               "%lld elements",
               static_cast<long long>(idx), v.t.lanes,
               static_cast<long long>(n)));
    for (int l = 0; l < v.t.lanes; ++l) {
      const auto u = static_cast<std::size_t>(idx + l);
      if (elem == Scalar::F64) {
        buf.as<double>()[u] = v.f[static_cast<std::size_t>(l)];
      } else {
        buf.as<float>()[u] =
            static_cast<float>(v.f[static_cast<std::size_t>(l)]);
      }
    }
    counters_.global_store_bytes +=
        static_cast<std::uint64_t>(v.t.lanes) *
        static_cast<std::uint64_t>(scalar_bytes(elem));
  }

  Val array_load(const std::vector<double>& arr, std::int64_t idx, Type t,
                 const Symbol& sym, bool local) {
    check(idx >= 0 &&
              idx + t.lanes <= static_cast<std::int64_t>(arr.size()),
          strf("%s array '%s' load out of range: index %lld + %d lanes, %zu "
               "elements",
               local ? "local" : "private", sym.name.c_str(),
               static_cast<long long>(idx), t.lanes, arr.size()));
    Val v;
    v.t = t;
    for (int l = 0; l < t.lanes; ++l)
      v.f[static_cast<std::size_t>(l)] = arr[static_cast<std::size_t>(idx + l)];
    const auto bytes = static_cast<std::uint64_t>(t.lanes) *
                       static_cast<std::uint64_t>(scalar_bytes(t.scalar));
    if (local) counters_.local_load_bytes += bytes;
    return v;
  }

  void store_to(std::vector<double>& arr, std::int64_t idx, const Val& v,
                const Symbol& sym, bool local) {
    check(idx >= 0 &&
              idx + v.t.lanes <= static_cast<std::int64_t>(arr.size()),
          strf("%s array '%s' store out of range: index %lld + %d lanes, %zu "
               "elements",
               local ? "local" : "private", sym.name.c_str(),
               static_cast<long long>(idx), v.t.lanes, arr.size()));
    for (int l = 0; l < v.t.lanes; ++l)
      arr[static_cast<std::size_t>(idx + l)] = v.f[static_cast<std::size_t>(l)];
    const auto bytes = static_cast<std::uint64_t>(v.t.lanes) *
                       static_cast<std::uint64_t>(scalar_bytes(v.t.scalar));
    if (local) counters_.local_store_bytes += bytes;
  }

  const Symbol& symbol(int slot) const {
    check(slot >= 0 && slot < static_cast<int>(k_.symbols.size()),
          "interp: bad symbol slot");
    return k_.symbols[static_cast<std::size_t>(slot)];
  }

  const Kernel& k_;
  std::array<std::int64_t, 2> global_, local_;
  const std::vector<ArgValue>& args_;
  std::int64_t items_per_group_ = 0;
  int n_vars_ = 0, n_parrays_ = 0, n_larrays_ = 0;
  std::int64_t gx_ = 0, gy_ = 0;
  std::vector<Item> items_;
  std::vector<char> active_;  // divergence mask (If statements)
  std::vector<std::vector<double>> larrays_;
  Counters counters_;
};

/// Field-wise sum of two counter sets (all fields are event counts, so the
/// reduction is order-independent).
Counters merge(Counters a, const Counters& b) {
  a.flops += b.flops;
  a.mads += b.mads;
  a.global_load_bytes += b.global_load_bytes;
  a.global_store_bytes += b.global_store_bytes;
  a.local_load_bytes += b.local_load_bytes;
  a.local_store_bytes += b.local_store_bytes;
  a.barriers += b.barriers;
  a.work_groups += b.work_groups;
  a.work_items += b.work_items;
  return a;
}

}  // namespace

std::atomic<Backend> g_backend_override{Backend::Auto};

void set_backend_override(Backend b) {
  g_backend_override.store(b, std::memory_order_relaxed);
}

Backend resolve_backend(Backend requested) {
  if (requested != Backend::Auto) return requested;
  const Backend o = g_backend_override.load(std::memory_order_relaxed);
  if (o != Backend::Auto) return o;
  if (const char* env = std::getenv("GEMMTUNE_INTERP")) {
    if (std::strcmp(env, "tree") == 0) return Backend::Tree;
    if (std::strcmp(env, "bytecode") == 0) return Backend::Bytecode;
    if (std::strcmp(env, "native") == 0) return Backend::Native;
    fail_unknown_value("GEMMTUNE_INTERP", env,
                       {"tree", "bytecode", "native"});
  }
  return Backend::Bytecode;
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Tree: return "tree";
    case Backend::Bytecode: return "bytecode";
    case Backend::Native: return "native";
  }
  return "auto";
}

Counters launch_with_backend(const Kernel& kernel,
                             std::array<std::int64_t, 2> global,
                             std::array<std::int64_t, 2> local,
                             const std::vector<ArgValue>& args, int threads,
                             Backend backend) {
  trace::Span launch_span("interp.launch");
  Backend be = resolve_backend(backend);
  // Validate once on the calling thread before any fan-out; workers share
  // the immutable plan and only allocate scratch. The plan is built before
  // any JIT work so malformed launches throw identically on every backend
  // without ever invoking the host compiler.
  const LaunchPlan plan(kernel, global, local, args);
  const std::int64_t ngroups = plan.ngroups;
  NativeKernelPtr native;
  if (be == Backend::Native) {
    std::string why;
    native = get_or_compile_native(kernel, &why);
    if (!native) {
      if (trace::enabled()) trace::counter_add("interp.native_fallback", 1);
      warn_native_fallback(why);
      be = Backend::Bytecode;
    }
  }
  CompiledKernelPtr prog;
  if (be == Backend::Bytecode) prog = get_or_compile(kernel);

  std::optional<ThreadPool> local_pool;
  if (threads > 0) local_pool.emplace(threads);
  ThreadPool& pool = local_pool ? *local_pool : ThreadPool::global();

  Counters total;
  if (pool.size() == 1 || ngroups < 2) {
    if (native) {
      total = native_run_range(*native, plan, 0, ngroups);
    } else if (prog) {
      VmMachine vm(*prog, plan);
      total = vm.run_range(0, ngroups);
    } else {
      Machine m(plan);
      total = m.run_range(0, ngroups);
    }
  } else {
    // One execution context per worker: all per-group scratch state
    // (work-item registers, private/local arrays, counters) lives in that
    // worker's Machine, and the counter sums are order-independent, so
    // results and counters are identical to the serial run for any thread
    // count — and for any backend.
    std::vector<Counters> partial(static_cast<std::size_t>(pool.size()));
    pool.parallel_for(ngroups,
                      [&](std::int64_t begin, std::int64_t end, int worker) {
                        Counters c;
                        if (native) {
                          c = native_run_range(*native, plan, begin, end);
                        } else if (prog) {
                          VmMachine vm(*prog, plan);
                          c = vm.run_range(begin, end);
                        } else {
                          Machine m(plan);
                          c = m.run_range(begin, end);
                        }
                        partial[static_cast<std::size_t>(worker)] = c;
                      });
    for (const Counters& c : partial) total = merge(total, c);
  }
  total.work_groups = static_cast<std::uint64_t>(ngroups);
  total.work_items = total.work_groups *
                     static_cast<std::uint64_t>(local[0] * local[1]);
  if (trace::enabled()) {
    // Surface the launch's dynamic counters; each field is a sum, so the
    // trace totals over any number of launches stay order-independent.
    trace::counter_add("interp.launches", 1);
    trace::counter_add("interp.flops", total.flops);
    trace::counter_add("interp.mads", total.mads);
    trace::counter_add("interp.global_load_bytes", total.global_load_bytes);
    trace::counter_add("interp.global_store_bytes",
                       total.global_store_bytes);
    trace::counter_add("interp.local_load_bytes", total.local_load_bytes);
    trace::counter_add("interp.local_store_bytes", total.local_store_bytes);
    trace::counter_add("interp.barriers", total.barriers);
    trace::counter_add("interp.work_groups", total.work_groups);
    trace::counter_add("interp.work_items", total.work_items);
  }
  return total;
}

Counters launch(const Kernel& kernel, std::array<std::int64_t, 2> global,
                std::array<std::int64_t, 2> local,
                const std::vector<ArgValue>& args, int threads) {
  return launch_with_backend(kernel, global, local, args, threads,
                             Backend::Auto);
}

}  // namespace gemmtune::ir
