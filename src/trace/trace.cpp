#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/report_version.hpp"

namespace gemmtune::trace {

namespace {

std::atomic<bool> g_enabled{false};

/// Monotonic nanoseconds since the first trace call in the process.
std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point base = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           base)
          .count());
}

/// Global sequence for gauge writes: the merged gauge value is the write
/// with the highest sequence number, independent of which thread's buffer
/// it landed in.
std::atomic<std::uint64_t> g_gauge_seq{0};

struct SpanEvent {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  int depth;
};

struct GaugeValue {
  double value = 0;
  std::uint64_t seq = 0;
};

/// One thread's recording buffer. The owning thread appends under `mu`;
/// the mutex is uncontended except while an export or reset is running.
struct ThreadBuf {
  std::mutex mu;
  std::vector<SpanEvent> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  int depth = 0;  // span nesting depth (owner thread only)
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during exit handlers
  return *r;
}

ThreadBuf& thread_buf() {
  // The registry shares ownership so a worker thread's data survives the
  // thread: pools are torn down before export in every current caller.
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

/// Order-independent aggregate of one span name.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~0ull;
  std::uint64_t max_ns = 0;
};

std::vector<std::shared_ptr<ThreadBuf>> snapshot_bufs() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.bufs;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  if (on) now_ns();  // pin the timestamp base before the first span
  g_enabled.store(on, std::memory_order_relaxed);
}

Span::Span(const char* name) : name_(name) {
  if (!enabled()) return;
  armed_ = true;
  ++thread_buf().depth;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!armed_) return;
  const std::uint64_t end = now_ns();
  ThreadBuf& b = thread_buf();
  const int depth = --b.depth;
  std::lock_guard<std::mutex> lock(b.mu);
  // Duration floor of 1 ns: steady_clock can tick coarser than the span.
  b.spans.push_back(
      {name_, start_ns_, std::max<std::uint64_t>(1, end - start_ns_), depth});
}

void counter_add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  ThreadBuf& b = thread_buf();
  std::lock_guard<std::mutex> lock(b.mu);
  b.counters[name] += delta;
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  ThreadBuf& b = thread_buf();
  const std::uint64_t seq = ++g_gauge_seq;
  std::lock_guard<std::mutex> lock(b.mu);
  GaugeValue& g = b.gauges[name];
  if (seq >= g.seq) g = {value, seq};
}

Json metrics_json() {
  std::map<std::string, SpanStats> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  for (const auto& buf : snapshot_bufs()) {
    std::lock_guard<std::mutex> lock(buf->mu);
    for (const SpanEvent& e : buf->spans) {
      SpanStats& s = spans[e.name];
      ++s.count;
      s.total_ns += e.dur_ns;
      s.min_ns = std::min(s.min_ns, e.dur_ns);
      s.max_ns = std::max(s.max_ns, e.dur_ns);
    }
    for (const auto& [name, v] : buf->counters) counters[name] += v;
    for (const auto& [name, g] : buf->gauges) {
      GaugeValue& dst = gauges[name];
      if (g.seq >= dst.seq) dst = g;
    }
  }

  Json doc = Json::object();
  doc["schema"] = kMetricsSchema;
  Json jspans = Json::object();
  for (const auto& [name, s] : spans) {
    Json j = Json::object();
    j["count"] = static_cast<std::int64_t>(s.count);
    j["total_ns"] = static_cast<std::int64_t>(s.total_ns);
    j["min_ns"] = static_cast<std::int64_t>(s.min_ns);
    j["max_ns"] = static_cast<std::int64_t>(s.max_ns);
    jspans[name] = std::move(j);
  }
  doc["spans"] = std::move(jspans);
  Json jcounters = Json::object();
  for (const auto& [name, v] : counters)
    jcounters[name] = static_cast<std::int64_t>(v);
  doc["counters"] = std::move(jcounters);
  Json jgauges = Json::object();
  for (const auto& [name, g] : gauges) jgauges[name] = g.value;
  doc["gauges"] = std::move(jgauges);

  // Derived rates, computed here so every consumer sees the same formula.
  Json derived = Json::object();
  auto rate = [&](const char* hit, const char* miss, const char* out) {
    const auto h = counters.find(hit), m = counters.find(miss);
    const double nh = h == counters.end() ? 0 : static_cast<double>(h->second);
    const double nm = m == counters.end() ? 0 : static_cast<double>(m->second);
    if (nh + nm > 0) derived[out] = nh / (nh + nm);
  };
  rate("perfmodel.cache_hit", "perfmodel.cache_miss",
       "perfmodel.cache_hit_rate");
  doc["derived"] = std::move(derived);
  return doc;
}

Json trace_json() {
  // Events carry the registration index of their buffer as the tid; the
  // export sorts by (timestamp, tid, name) so equal-time events still
  // serialize in a stable order.
  struct Ev {
    SpanEvent e;
    int tid;
  };
  std::vector<Ev> events;
  const auto bufs = snapshot_bufs();
  for (std::size_t t = 0; t < bufs.size(); ++t) {
    std::lock_guard<std::mutex> lock(bufs[t]->mu);
    for (const SpanEvent& e : bufs[t]->spans)
      events.push_back({e, static_cast<int>(t)});
  }
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.e.start_ns != b.e.start_ns) return a.e.start_ns < b.e.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::string_view(a.e.name) < std::string_view(b.e.name);
  });

  Json doc = Json::object();
  Json list = Json::array();
  for (const Ev& ev : events) {
    Json j = Json::object();
    j["name"] = ev.e.name;
    j["cat"] = "gemmtune";
    j["ph"] = "X";
    j["ts"] = static_cast<double>(ev.e.start_ns) / 1e3;  // microseconds
    j["dur"] = static_cast<double>(ev.e.dur_ns) / 1e3;
    j["pid"] = 1;
    j["tid"] = ev.tid;
    Json args = Json::object();
    args["depth"] = ev.e.depth;
    j["args"] = std::move(args);
    list.push_back(std::move(j));
  }
  doc["traceEvents"] = std::move(list);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

namespace {

void write_json_file(const std::string& path, const Json& doc) {
  std::ofstream f(path);
  check(f.good(), "trace: cannot open " + path + " for writing");
  f << doc.dump(2) << "\n";
  f.flush();
  check(f.good(), "trace: failed writing " + path);
}

}  // namespace

void write_metrics_file(const std::string& path) {
  write_json_file(path, metrics_json());
}

void write_trace_file(const std::string& path) {
  write_json_file(path, trace_json());
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->spans.clear();
    buf->counters.clear();
    buf->gauges.clear();
  }
  // Keep only buffers still owned by a live thread (use_count > 1): dead
  // threads' buffers hold no data after the clear above.
  std::erase_if(r.bufs,
                [](const std::shared_ptr<ThreadBuf>& b) {
                  return b.use_count() == 1;
                });
}

}  // namespace gemmtune::trace
