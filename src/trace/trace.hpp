// Structured observability layer: scoped spans, named counters and gauges,
// exported as Chrome trace-event JSON plus a flat metrics JSON.
//
// Design points:
//  * Off by default and cheap when off: every record call starts with one
//    relaxed atomic load; disabled instrumentation costs a test-and-branch
//    (the parallel suite budget is <5% overhead with tracing disabled).
//  * Thread-aware: each thread records into its own buffer (one uncontended
//    mutex per buffer guards against a concurrent export), so worker
//    threads never contend with each other on the hot path.
//  * Deterministic merge: the aggregates in the metrics JSON are
//    independent of thread count and scheduling, following the same
//    ordering discipline as the thread pool's chunk merge — counters merge
//    by field-wise sum, span statistics (count/total/min/max per name) are
//    order-independent reductions, and gauges resolve by a global write
//    sequence (last write wins). Only raw timeline timestamps in the
//    Chrome trace vary run to run.
//  * Exported through common/json, so both files are valid documents of
//    the schemas below and round-trip through Json::parse.
//
// Metrics JSON schema ("gemmtune-metrics-v1"):
//   { "schema": "gemmtune-metrics-v1",
//     "spans":    { name: {count, total_ns, min_ns, max_ns} },
//     "counters": { name: integer },
//     "gauges":   { name: number },
//     "derived":  { "perfmodel.cache_hit_rate": number, ... } }
//
// Trace JSON schema: the Chrome trace-event format (load in
// chrome://tracing or Perfetto): {"traceEvents": [{name, cat, ph:"X",
// ts, dur, pid, tid, args:{depth}}], "displayTimeUnit": "ms"}.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"

namespace gemmtune::trace {

/// Whether instrumentation records anything (process-wide, off by default).
bool enabled();
void set_enabled(bool on);

/// RAII scoped span: measures wall time from construction to destruction on
/// the calling thread and records it under `name`. Nesting is tracked with
/// a per-thread depth. `name` must outlive the span (use string literals).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Adds `delta` to the named counter on the calling thread's buffer.
/// Merged totals are the sum over all threads (order-independent).
void counter_add(const char* name, std::uint64_t delta);

/// Sets the named gauge. Across threads the merged value is the most
/// recent write in the global sequence order (last write wins).
void gauge_set(const char* name, double value);

/// Aggregated metrics of everything recorded since the last reset().
/// Deterministic for a deterministic program at any thread count.
Json metrics_json();

/// Chrome trace-event document of every recorded span, sorted by
/// (timestamp, thread, name) for a stable event order.
Json trace_json();

/// Writes metrics_json() / trace_json() to `path` (pretty-printed).
/// Throws gemmtune::Error when the file cannot be written.
void write_metrics_file(const std::string& path);
void write_trace_file(const std::string& path);

/// Discards all recorded spans, counters and gauges (keeps the enabled
/// flag). Buffers of exited threads are dropped; live threads keep
/// recording into their existing buffers.
void reset();

}  // namespace gemmtune::trace
