// Parser for the OpenCL C subset the code generator emits, lowering kernel
// source back into the kernel IR.
//
// Together with the emitter this closes the loop: for any generated kernel
// K, parse(emit(K)) is an IR kernel that executes identically (same
// results, same dynamic counters) — the property the round-trip tests
// verify for every Table II kernel. It also serves as SimCL's "compiler"
// front-end: OpenCL text in, executable kernel out.
//
// Supported subset (everything emit.cpp can print):
//   * one __kernel function, optional fp64 pragma, optional
//     reqd_work_group_size attribute,
//   * parameters: __global [const] T*, const int, const T,
//   * declarations: __local arrays, private arrays, scalar/vector
//     variables,
//   * statements: assignment, scalar/vector stores (vstoreN), canonical
//     for loops, barrier(CLK_LOCAL_MEM_FENCE), comments,
//   * expressions: literals, variables, array/global indexing, vloadN,
//     mad(), component access (.sK), (int)get_*(d) builtins, vector
//     splats ((typeN)(x)), and +,-,*,/,% with C precedence.
#pragma once

#include <string>

#include "kernelir/kernel.hpp"

namespace gemmtune::clfront {

/// Parses OpenCL C source containing exactly one kernel.
/// Throws gemmtune::Error with a line-numbered message on any construct
/// outside the supported subset.
ir::Kernel parse_kernel(const std::string& source);

/// Parses a translation unit containing one or more kernels (a "program"
/// in OpenCL terms). Pragmas may appear between kernels.
std::vector<ir::Kernel> parse_program(const std::string& source);

}  // namespace gemmtune::clfront
