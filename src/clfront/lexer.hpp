// Lexer for the OpenCL C subset the code generator emits.
//
// Tokenizes identifiers, integer and floating literals (with the OpenCL
// `f` suffix), punctuation, preprocessor lines, and skips comments. Used
// by the parser (parser.hpp) that lowers generated kernel source back to
// the kernel IR, closing the emit -> parse -> execute loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gemmtune::clfront {

enum class TokKind {
  End,
  Ident,      ///< identifiers and keywords
  IntLit,
  FloatLit,   ///< has_f_suffix records the trailing 'f'
  Punct,      ///< single/multi character punctuation, in `text`
  Pragma,     ///< a whole '#...' line, in `text`
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;          ///< identifier / punctuation / pragma text
  std::int64_t ival = 0;     ///< IntLit value
  double fval = 0;           ///< FloatLit value
  bool has_f_suffix = false; ///< FloatLit: trailing 'f'
  int line = 0;              ///< 1-based source line (for diagnostics)
};

/// Tokenizes `source`; throws gemmtune::Error on malformed input.
/// The result always ends with an End token.
std::vector<Token> lex(const std::string& source);

}  // namespace gemmtune::clfront
