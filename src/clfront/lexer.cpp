#include "clfront/lexer.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::clfront {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuation we must not split.
const char* kMulti[] = {"+=", "-=", "*=", "==", "<=", ">=", "&&", "||"};

}  // namespace

std::vector<Token> lex(const std::string& s) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  auto err = [&](const std::string& msg) {
    fail(strf("lex error at line %d: %s", line, msg.c_str()));
  };
  while (i < s.size()) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      const std::size_t end = s.find("*/", i + 2);
      if (end == std::string::npos) err("unterminated comment");
      for (std::size_t j = i; j < end; ++j)
        if (s[j] == '\n') ++line;
      i = end + 2;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    // Preprocessor line.
    if (c == '#') {
      std::size_t end = s.find('\n', i);
      if (end == std::string::npos) end = s.size();
      Token t;
      t.kind = TokKind::Pragma;
      t.text = trim(s.substr(i, end - i));
      t.line = line;
      out.push_back(std::move(t));
      i = end;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < s.size() && ident_char(s[j])) ++j;
      Token t;
      t.kind = TokKind::Ident;
      t.text = s.substr(i, j - i);
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Numeric literal.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[j])) ||
              s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
              ((s[j] == '+' || s[j] == '-') && j > i &&
               (s[j - 1] == 'e' || s[j - 1] == 'E')))) {
        if (s[j] == '.' || s[j] == 'e' || s[j] == 'E') is_float = true;
        ++j;
      }
      Token t;
      t.line = line;
      const std::string lit = s.substr(i, j - i);
      if (is_float) {
        t.kind = TokKind::FloatLit;
        t.fval = std::stod(lit);
        if (j < s.size() && (s[j] == 'f' || s[j] == 'F')) {
          t.has_f_suffix = true;
          ++j;
        }
      } else {
        t.kind = TokKind::IntLit;
        t.ival = std::stoll(lit);
        if (j < s.size() && (s[j] == 'f' || s[j] == 'F')) {
          // "2f" style literal: treat as float.
          t.kind = TokKind::FloatLit;
          t.fval = static_cast<double>(t.ival);
          t.has_f_suffix = true;
          ++j;
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Punctuation.
    {
      Token t;
      t.kind = TokKind::Punct;
      t.line = line;
      bool matched = false;
      for (const char* m : kMulti) {
        const std::size_t len = std::char_traits<char>::length(m);
        if (s.compare(i, len, m) == 0) {
          t.text = m;
          i += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kSingles = "+-*/%()[]{};,.<>=&|!?:";
        if (kSingles.find(c) == std::string::npos)
          err(strf("unexpected character '%c'", c));
        t.text = std::string(1, c);
        ++i;
      }
      out.push_back(std::move(t));
    }
  }
  Token end;
  end.kind = TokKind::End;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

}  // namespace gemmtune::clfront
