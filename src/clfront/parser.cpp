#include "clfront/parser.hpp"

#include <map>
#include <cstring>
#include <optional>

#include "clfront/lexer.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::clfront {

using namespace gemmtune::ir;

namespace {

std::optional<Type> type_from_name(const std::string& name) {
  if (name == "int") return i32();
  for (const auto& [base, sc] :
       {std::pair<std::string, Scalar>{"float", Scalar::F32},
        std::pair<std::string, Scalar>{"double", Scalar::F64}}) {
    if (name == base) return fp(sc, 1);
    if (starts_with(name, base)) {
      const std::string suffix = name.substr(base.size());
      for (int lanes : {2, 4, 8, 16}) {
        if (suffix == std::to_string(lanes)) return fp(sc, lanes);
      }
    }
  }
  return std::nullopt;
}

std::optional<BuiltinFn> builtin_from_name(const std::string& name) {
  if (name == "get_group_id") return BuiltinFn::GroupId;
  if (name == "get_local_id") return BuiltinFn::LocalId;
  if (name == "get_global_id") return BuiltinFn::GlobalId;
  if (name == "get_local_size") return BuiltinFn::LocalSize;
  if (name == "get_num_groups") return BuiltinFn::NumGroups;
  return std::nullopt;
}

/// `vloadN` / `vstoreN` -> N; 0 when the identifier is something else.
int vec_op_width(const std::string& name, const char* prefix) {
  if (!starts_with(name, prefix)) return 0;
  const std::string suffix = name.substr(std::strlen(prefix));
  for (int lanes : {2, 4, 8, 16}) {
    if (suffix == std::to_string(lanes)) return lanes;
  }
  return 0;
}

class Parser {
 public:
  explicit Parser(const std::string& source) : toks_(lex(source)) {}

  /// Parses every kernel in the translation unit.
  std::vector<Kernel> run_all() {
    std::vector<Kernel> kernels;
    while (true) {
      while (peek().kind == TokKind::Pragma) ++pos_;
      if (peek().kind == TokKind::End) break;
      kernels.push_back(run_one());
    }
    check_at(!kernels.empty(), "no kernels in source");
    return kernels;
  }

  Kernel run_one() {
    // Per-kernel state.
    builder_.reset();
    symbols_.clear();
    args_.clear();
    expect_ident("__kernel");
    // Optional attribute.
    std::int64_t reqd[2] = {0, 0};
    if (peek_is_ident("__attribute__")) {
      ++pos_;
      expect_punct("(");
      expect_punct("(");
      expect_ident("reqd_work_group_size");
      expect_punct("(");
      reqd[0] = expect_int();
      expect_punct(",");
      reqd[1] = expect_int();
      expect_punct(",");
      check_at(expect_int() == 1, "third work-group dimension must be 1");
      expect_punct(")");
      expect_punct(")");
      expect_punct(")");
    }
    expect_ident("void");
    const std::string name = expect_any_ident();
    // Parameters determine the kernel precision (first fp element type).
    std::vector<ArgInfo> args;
    expect_punct("(");
    if (!peek_is_punct(")")) {
      while (true) {
        args.push_back(parse_param());
        if (peek_is_punct(",")) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    expect_punct(")");
    Scalar precision = Scalar::F64;
    for (const auto& a : args) {
      if (a.elem != Scalar::I32) {
        precision = a.elem;
        break;
      }
    }
    builder_.emplace(name, precision);
    for (const auto& a : args) {
      const int idx = builder_->add_arg(a.name, a.kind, a.elem);
      args_.emplace(a.name, std::pair<int, ArgInfo>{idx, a});
    }
    builder_->set_reqd_local(reqd[0], reqd[1]);

    expect_punct("{");
    parse_declarations();
    for (auto& s : parse_statements()) builder_->append(std::move(s));
    expect_punct("}");
    return builder_->build();
  }

 private:
  // ---- token helpers ---------------------------------------------------------

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool peek_is_punct(const std::string& p, int ahead = 0) const {
    return peek(ahead).kind == TokKind::Punct && peek(ahead).text == p;
  }
  bool peek_is_ident(const std::string& s, int ahead = 0) const {
    return peek(ahead).kind == TokKind::Ident && peek(ahead).text == s;
  }
  [[noreturn]] void err(const std::string& msg) const {
    fail(strf("parse error at line %d: %s (near '%s')", peek().line,
              msg.c_str(), peek().text.c_str()));
  }
  void check_at(bool cond, const std::string& msg) const {
    if (!cond) err(msg);
  }
  void expect_punct(const std::string& p) {
    check_at(peek_is_punct(p), "expected '" + p + "'");
    ++pos_;
  }
  void expect_ident(const std::string& s) {
    check_at(peek_is_ident(s), "expected '" + s + "'");
    ++pos_;
  }
  std::string expect_any_ident() {
    check_at(peek().kind == TokKind::Ident, "expected identifier");
    return toks_[pos_++].text;
  }
  std::int64_t expect_int() {
    check_at(peek().kind == TokKind::IntLit, "expected integer literal");
    return toks_[pos_++].ival;
  }

  // ---- declarations -------------------------------------------------------------

  ArgInfo parse_param() {
    ArgInfo a;
    if (peek_is_ident("__global")) {
      ++pos_;
      bool is_const = false;
      if (peek_is_ident("const")) {
        is_const = true;
        ++pos_;
      }
      const auto t = type_from_name(expect_any_ident());
      check_at(t.has_value() && t->lanes == 1, "bad pointer element type");
      expect_punct("*");
      a.kind = is_const ? ArgKind::GlobalConstPtr : ArgKind::GlobalPtr;
      a.elem = t->scalar;
      a.name = expect_any_ident();
      return a;
    }
    expect_ident("const");
    const auto t = type_from_name(expect_any_ident());
    check_at(t.has_value() && t->lanes == 1, "bad scalar parameter type");
    a.kind = t->scalar == Scalar::I32 ? ArgKind::Int : ArgKind::Float;
    a.elem = t->scalar;
    a.name = expect_any_ident();
    return a;
  }

  void parse_declarations() {
    while (true) {
      const bool is_local = peek_is_ident("__local");
      const int type_at = is_local ? 1 : 0;
      if (peek(type_at).kind != TokKind::Ident) return;
      const auto t = type_from_name(peek(type_at).text);
      if (!t) return;  // not a declaration: statements begin
      pos_ += static_cast<std::size_t>(type_at) + 1;
      const std::string name = expect_any_ident();
      if (peek_is_punct("[")) {
        ++pos_;
        const std::int64_t len = expect_int();
        expect_punct("]");
        check_at(t->lanes == 1, "array element must be scalar");
        const int slot = builder_->decl_array(
            name, t->scalar, static_cast<int>(len),
            is_local ? AddrSpace::Local : AddrSpace::Private);
        symbols_.emplace(name, slot);
      } else {
        check_at(!is_local, "__local scalars unsupported");
        const int slot = builder_->decl_var(name, *t);
        symbols_.emplace(name, slot);
      }
      expect_punct(";");
    }
  }

  // ---- statements -----------------------------------------------------------------

  std::vector<StmtPtr> parse_statements() {
    std::vector<StmtPtr> out;
    while (!peek_is_punct("}") && peek().kind != TokKind::End) {
      out.push_back(parse_statement());
    }
    return out;
  }

  StmtPtr parse_statement() {
    // for loop
    if (peek_is_ident("for")) return parse_for();
    // if statement
    if (peek_is_ident("if")) {
      ++pos_;
      expect_punct("(");
      ExprPtr cond = parse_expr();
      expect_punct(")");
      expect_punct("{");
      std::vector<StmtPtr> body = parse_statements();
      expect_punct("}");
      return if_then(std::move(cond), std::move(body));
    }
    // barrier
    if (peek_is_ident("barrier")) {
      ++pos_;
      expect_punct("(");
      expect_ident("CLK_LOCAL_MEM_FENCE");
      expect_punct(")");
      expect_punct(";");
      return barrier();
    }
    // vstoreN(value, 0, base + index);
    if (peek().kind == TokKind::Ident) {
      const int lanes = vec_op_width(peek().text, "vstore");
      if (lanes > 0) {
        ++pos_;
        expect_punct("(");
        ExprPtr value = parse_expr();
        check_at(value->type.lanes == lanes, "vstore width mismatch");
        expect_punct(",");
        check_at(expect_int() == 0, "vstore offset must be 0");
        expect_punct(",");
        const std::string base = expect_any_ident();
        expect_punct("+");
        ExprPtr index = parse_expr();
        expect_punct(")");
        expect_punct(";");
        return make_store(base, std::move(index), std::move(value));
      }
    }
    // assignment: ident = expr;   or   ident[expr] = expr;
    const std::string name = expect_any_ident();
    if (peek_is_punct("[")) {
      ++pos_;
      ExprPtr index = parse_expr();
      expect_punct("]");
      expect_punct("=");
      ExprPtr value = parse_expr();
      expect_punct(";");
      check_at(value->type.lanes == 1, "scalar store expected");
      return make_store(name, std::move(index), std::move(value));
    }
    expect_punct("=");
    ExprPtr value = parse_expr();
    expect_punct(";");
    const auto it = symbols_.find(name);
    check_at(it != symbols_.end(), "assignment to unknown variable " + name);
    return assign(it->second, std::move(value));
  }

  StmtPtr parse_for() {
    expect_ident("for");
    expect_punct("(");
    const std::string var = expect_any_ident();
    const auto it = symbols_.find(var);
    check_at(it != symbols_.end(), "undeclared loop variable " + var);
    expect_punct("=");
    ExprPtr init = parse_expr();
    expect_punct(";");
    expect_ident(var);
    expect_punct("<");
    ExprPtr limit = parse_expr();
    expect_punct(";");
    expect_ident(var);
    expect_punct("+=");
    ExprPtr step = parse_expr();
    expect_punct(")");
    expect_punct("{");
    std::vector<StmtPtr> body = parse_statements();
    expect_punct("}");
    return for_loop(it->second, std::move(init), std::move(limit),
                    std::move(step), std::move(body));
  }

  StmtPtr make_store(const std::string& base, ExprPtr index, ExprPtr value) {
    if (const auto sym = symbols_.find(base); sym != symbols_.end()) {
      const Symbol& s = builder_->symbol(sym->second);
      check_at(s.array_len > 0, base + " is not an array");
      return s.space == AddrSpace::Local
                 ? store_local(sym->second, std::move(index),
                               std::move(value))
                 : store_private(sym->second, std::move(index),
                                 std::move(value));
    }
    if (const auto arg = args_.find(base); arg != args_.end()) {
      return store_global(arg->second.first, std::move(index),
                          std::move(value));
    }
    err("store to unknown symbol " + base);
  }

  // ---- expressions ---------------------------------------------------------------
  // Standard C precedence for the operators we emit, lowest to highest:
  // ?: over && over < over (+, -) over (*, /, %).

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr e = parse_logical_and();
    if (!peek_is_punct("?")) return e;
    ++pos_;
    ExprPtr a = parse_ternary();
    expect_punct(":");
    ExprPtr b = parse_ternary();
    return select(std::move(e), std::move(a), std::move(b));
  }

  ExprPtr parse_logical_and() {
    ExprPtr e = parse_relational();
    while (peek_is_punct("&&")) {
      ++pos_;
      ExprPtr rhs = parse_relational();
      check_at(!e->type.is_fp() && !rhs->type.is_fp(),
               "&& requires integer operands");
      e = bin(BinOp::And, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr parse_relational() {
    ExprPtr e = parse_additive();
    while (peek_is_punct("<")) {
      ++pos_;
      ExprPtr rhs = parse_additive();
      check_at(!e->type.is_fp() && !rhs->type.is_fp(),
               "< requires integer operands");
      e = bin(BinOp::Lt, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (peek_is_punct("+") || peek_is_punct("-")) {
      const bool add = peek().text == "+";
      ++pos_;
      ExprPtr rhs = parse_multiplicative();
      lhs = combine(add ? '+' : '-', std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_postfix();
    while (peek_is_punct("*") || peek_is_punct("/") || peek_is_punct("%")) {
      const char op = peek().text[0];
      ++pos_;
      ExprPtr rhs = parse_postfix();
      lhs = combine(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr combine(char op, ExprPtr lhs, ExprPtr rhs) {
    const bool fp_op = lhs->type.is_fp();
    check_at(fp_op == rhs->type.is_fp(), "mixed int/float arithmetic");
    switch (op) {
      case '+': return bin(fp_op ? BinOp::FAdd : BinOp::Add, lhs, rhs);
      case '-': return bin(fp_op ? BinOp::FSub : BinOp::Sub, lhs, rhs);
      case '*': return bin(fp_op ? BinOp::FMul : BinOp::Mul, lhs, rhs);
      case '/':
        check_at(!fp_op, "floating division unsupported");
        return bin(BinOp::Div, lhs, rhs);
      case '%':
        check_at(!fp_op, "floating modulo unsupported");
        return bin(BinOp::Mod, lhs, rhs);
    }
    err("bad operator");
  }

  /// Postfix handles component access on a primary: (expr).s3
  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (peek_is_punct(".")) {
      ++pos_;
      const std::string comp = expect_any_ident();
      check_at(comp.size() == 2 && comp[0] == 's', "expected .s<lane>");
      const char h = comp[1];
      int lane_idx = -1;
      if (h >= '0' && h <= '9') lane_idx = h - '0';
      if (h >= 'a' && h <= 'f') lane_idx = h - 'a' + 10;
      check_at(lane_idx >= 0, "bad component letter");
      e = lane(std::move(e), lane_idx);
    }
    return e;
  }

  ExprPtr parse_primary() {
    // Unary minus: negate literals directly, otherwise 0 - x.
    if (peek_is_punct("-")) {
      ++pos_;
      ExprPtr inner = parse_postfix();
      const Type t = inner->type;  // read before moving: argument order
      if (t.is_fp())
        return bin(BinOp::FSub, fconst(0.0, fp(t.scalar, t.lanes)),
                   std::move(inner));
      return bin(BinOp::Sub, iconst(0), std::move(inner));
    }
    const Token& t = peek();
    if (t.kind == TokKind::IntLit) {
      ++pos_;
      return iconst(t.ival);
    }
    if (t.kind == TokKind::FloatLit) {
      ++pos_;
      return fconst(t.fval, fp(t.has_f_suffix ? Scalar::F32 : Scalar::F64, 1));
    }
    if (t.kind == TokKind::Punct && t.text == "(") {
      // Three shapes: (type)(expr) cast/splat, or parenthesized expr.
      if (peek(1).kind == TokKind::Ident && peek_is_punct(")", 2)) {
        if (const auto ty = type_from_name(peek(1).text)) {
          pos_ += 3;  // ( type )
          // The operand is a postfix expression: a parenthesized
          // expression for splats ((double4)(x)) or a bare call for
          // builtin casts ((int)get_global_id(0)).
          ExprPtr inner = parse_postfix();
          if (ty->scalar == Scalar::I32) {
            check_at(!inner->type.is_fp(), "float-to-int cast unsupported");
            return inner;  // (int) cast of an int expression: no-op
          }
          if (inner->type.is_fp()) {
            if (ty->lanes > 1 && inner->type.lanes == 1)
              return splat(std::move(inner), ty->lanes);
            check_at(inner->type == *ty, "vector cast width mismatch");
            return inner;
          }
          err("numeric cast of integer to float unsupported");
        }
      }
      ++pos_;
      ExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    check_at(t.kind == TokKind::Ident, "expected expression");
    const std::string name = t.text;
    // mad(a, b, c)
    if (name == "mad") {
      ++pos_;
      expect_punct("(");
      ExprPtr a = parse_expr();
      expect_punct(",");
      ExprPtr b = parse_expr();
      expect_punct(",");
      ExprPtr c = parse_expr();
      expect_punct(")");
      return mad(std::move(a), std::move(b), std::move(c));
    }
    // vloadN(0, base + index)
    if (const int lanes = vec_op_width(name, "vload")) {
      ++pos_;
      expect_punct("(");
      check_at(expect_int() == 0, "vload offset must be 0");
      expect_punct(",");
      const std::string base = expect_any_ident();
      expect_punct("+");
      ExprPtr index = parse_expr();
      expect_punct(")");
      return make_load(base, std::move(index), lanes);
    }
    // builtin call (usually behind an (int) cast, but accept bare too)
    if (const auto fn = builtin_from_name(name)) {
      ++pos_;
      expect_punct("(");
      const std::int64_t dim = expect_int();
      expect_punct(")");
      return builtin(*fn, static_cast<int>(dim));
    }
    ++pos_;
    // indexed load: name[expr]
    if (peek_is_punct("[")) {
      ++pos_;
      ExprPtr index = parse_expr();
      expect_punct("]");
      return make_load(name, std::move(index), 1);
    }
    // plain variable or scalar argument
    if (const auto sym = symbols_.find(name); sym != symbols_.end()) {
      const Symbol& s = builder_->symbol(sym->second);
      check_at(s.array_len == 0, name + " is an array; index it");
      return builder_->ref(sym->second);
    }
    if (const auto arg = args_.find(name); arg != args_.end()) {
      const ArgInfo& info = arg->second.second;
      check_at(info.kind == ArgKind::Int || info.kind == ArgKind::Float,
               "pointer argument used as value");
      return arg_ref(arg->second.first,
                     info.kind == ArgKind::Int ? i32() : fp(info.elem, 1));
    }
    err("unknown identifier " + name);
  }

  ExprPtr make_load(const std::string& base, ExprPtr index, int lanes) {
    if (const auto sym = symbols_.find(base); sym != symbols_.end()) {
      const Symbol& s = builder_->symbol(sym->second);
      check_at(s.array_len > 0, base + " is not an array");
      const Type t = fp(s.type.scalar, lanes);
      return s.space == AddrSpace::Local
                 ? load_local(sym->second, std::move(index), t)
                 : load_private(sym->second, std::move(index), t);
    }
    if (const auto arg = args_.find(base); arg != args_.end()) {
      const ArgInfo& info = arg->second.second;
      check_at(info.kind == ArgKind::GlobalPtr ||
                   info.kind == ArgKind::GlobalConstPtr,
               base + " is not a pointer argument");
      return load_global(arg->second.first, std::move(index),
                         fp(info.elem, lanes));
    }
    err("load from unknown symbol " + base);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::optional<KernelBuilder> builder_;
  std::map<std::string, int> symbols_;                      // name -> slot
  std::map<std::string, std::pair<int, ArgInfo>> args_;     // name -> (idx, info)
};

}  // namespace

ir::Kernel parse_kernel(const std::string& source) {
  auto kernels = Parser(source).run_all();
  check(kernels.size() == 1,
        "parse_kernel: source contains " + std::to_string(kernels.size()) +
            " kernels; use parse_program");
  return std::move(kernels.front());
}

std::vector<ir::Kernel> parse_program(const std::string& source) {
  return Parser(source).run_all();
}

}  // namespace gemmtune::clfront
