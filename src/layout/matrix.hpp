// Host-side dense matrices.
//
// The public GEMM API follows BLAS convention: matrices live in column-major
// storage with a leading dimension. Row-major is also supported because the
// paper's kernels are tuned for row-major-aligned operand buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gemmtune {

using index_t = std::int64_t;

/// Storage order of a host matrix.
enum class StorageOrder { RowMajor, ColMajor };

/// Transpose op applied to an operand, as in the BLAS GEMM signature.
enum class Transpose { No, Yes };

/// Owning dense matrix with explicit leading dimension.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Allocates a rows x cols matrix with tight leading dimension.
  Matrix(index_t rows, index_t cols,
         StorageOrder order = StorageOrder::ColMajor)
      : rows_(rows), cols_(cols), order_(order) {
    check(rows >= 0 && cols >= 0, "Matrix: negative extent");
    ld_ = order == StorageOrder::ColMajor ? rows : cols;
    if (ld_ == 0) ld_ = 1;
    data_.assign(static_cast<std::size_t>(
                     order == StorageOrder::ColMajor ? ld_ * cols : ld_ * rows),
                 T{});
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  StorageOrder order() const { return order_; }

  /// Element access by (row, col) regardless of storage order.
  T& at(index_t r, index_t c) { return data_[offset(r, c)]; }
  const T& at(index_t r, index_t c) const { return data_[offset(r, c)]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  /// Fills with uniform values in [lo, hi) from a deterministic stream.
  void fill_random(Rng& rng, T lo = T(-1), T hi = T(1)) {
    for (auto& v : data_)
      v = static_cast<T>(rng.next_double(static_cast<double>(lo),
                                         static_cast<double>(hi)));
  }

  /// Returns a transposed copy with the same storage order.
  Matrix<T> transposed() const {
    Matrix<T> out(cols_, rows_, order_);
    for (index_t r = 0; r < rows_; ++r)
      for (index_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
    return out;
  }

 private:
  std::size_t offset(index_t r, index_t c) const {
    check(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "Matrix: index out of range");
    return static_cast<std::size_t>(order_ == StorageOrder::ColMajor
                                        ? c * ld_ + r
                                        : r * ld_ + c);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  StorageOrder order_ = StorageOrder::ColMajor;
  std::vector<T> data_;
};

/// Maximum absolute elementwise difference; used by tests and examples to
/// compare kernel output against the host reference.
template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(),
        "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) {
      const double d = std::abs(static_cast<double>(a.at(r, c)) -
                                static_cast<double>(b.at(r, c)));
      if (d > m) m = d;
    }
  return m;
}

}  // namespace gemmtune
