// Block-major data layouts for kernel operand buffers (paper Section III-D,
// Fig. 3).
//
// The tuned kernel computes C <- alpha * A^T * B + beta * C, where the A
// operand buffer holds A^T as a K x M matrix and the B operand buffer holds
// B as a K x N matrix. Three layouts are supported for each operand:
//
//  * RowMajor — element (k, m) at k * Mp + m.
//  * CBL (column-block-row-major) — the matrix is cut into K x Mwg column
//    blocks; each block is stored contiguously in row-major order. All data
//    a work-group needs for one column block is contiguous.
//  * RBL (row-block-row-major) — the matrix is cut into Kwg x Mwg sub-blocks
//    (row-blocks of height Kwg, each split into Mwg-wide tiles); each
//    sub-block is stored contiguously in row-major order. All data for one
//    outer-loop iteration of a work-group is contiguous.
//
// The same math applies to the B operand with (Kwg, Nwg) blocking.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/intmath.hpp"

namespace gemmtune {

/// Operand buffer layout (paper Fig. 3).
enum class BlockLayout { RowMajor, CBL, RBL };

/// Short name as the paper prints it in Table II.
inline const char* to_string(BlockLayout l) {
  switch (l) {
    case BlockLayout::RowMajor: return "RM";
    case BlockLayout::CBL: return "CBL";
    case BlockLayout::RBL: return "RBL";
  }
  return "?";
}

/// Parses the short name produced by to_string.
BlockLayout block_layout_from_string(const std::string& s);

/// Index math for one packed operand: a (padded) `rows x cols` matrix laid
/// out with `rblock x cblock` blocking. For operand A this is the K x M
/// transposed matrix with (Kwg, Mwg); for operand B the K x N matrix with
/// (Kwg, Nwg). Extents must be multiples of the blocking factors (the pack
/// step zero-pads to guarantee this).
class PackedIndexer {
 public:
  PackedIndexer(BlockLayout layout, std::int64_t rows, std::int64_t cols,
                std::int64_t rblock, std::int64_t cblock)
      : layout_(layout),
        rows_(rows),
        cols_(cols),
        rblock_(rblock),
        cblock_(cblock) {
    check(rows > 0 && cols > 0, "PackedIndexer: empty matrix");
    check(rblock > 0 && cblock > 0, "PackedIndexer: bad blocking");
    check(divides(rblock, rows) && divides(cblock, cols),
          "PackedIndexer: extents must be multiples of blocking factors");
  }

  BlockLayout layout() const { return layout_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Total elements in the packed buffer (identical for all layouts).
  std::int64_t size() const { return rows_ * cols_; }

  /// Linear offset of logical element (r, c).
  std::int64_t at(std::int64_t r, std::int64_t c) const {
    check(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "PackedIndexer: index out of range");
    switch (layout_) {
      case BlockLayout::RowMajor:
        return r * cols_ + c;
      case BlockLayout::CBL: {
        const std::int64_t cb = c / cblock_;
        const std::int64_t cc = c % cblock_;
        return cb * (rows_ * cblock_) + r * cblock_ + cc;
      }
      case BlockLayout::RBL: {
        const std::int64_t rb = r / rblock_;
        const std::int64_t rr = r % rblock_;
        const std::int64_t cb = c / cblock_;
        const std::int64_t cc = c % cblock_;
        return rb * (rblock_ * cols_) + cb * (rblock_ * cblock_) +
               rr * cblock_ + cc;
      }
    }
    fail("PackedIndexer: bad layout");
  }

 private:
  BlockLayout layout_;
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t rblock_;
  std::int64_t cblock_;
};

}  // namespace gemmtune
