#include "layout/packing.hpp"

namespace gemmtune {

PackedExtents packed_extents(index_t M, index_t N, index_t K, index_t Mwg,
                             index_t Nwg, index_t Kwg) {
  check(M > 0 && N > 0 && K > 0, "packed_extents: empty problem");
  check(Mwg > 0 && Nwg > 0 && Kwg > 0, "packed_extents: bad blocking");
  return PackedExtents{round_up(M, Mwg), round_up(N, Nwg), round_up(K, Kwg)};
}

namespace {

// op(X)(r, c): element (r, c) of the logical operand after the transpose op.
template <typename T>
T op_at(const Matrix<T>& X, Transpose trans, index_t r, index_t c) {
  return trans == Transpose::No ? X.at(r, c) : X.at(c, r);
}

}  // namespace

template <typename T>
std::vector<T> pack_a(const Matrix<T>& A, Transpose trans, index_t M,
                      index_t K, index_t Mp, index_t Kp, BlockLayout layout,
                      index_t Mwg, index_t Kwg) {
  PackedIndexer idx(layout, Kp, Mp, Kwg, Mwg);
  std::vector<T> buf(static_cast<std::size_t>(idx.size()), T{});
  // op(A) is M x K; the buffer stores op(A)^T, i.e. element (k, m).
  for (index_t m = 0; m < M; ++m)
    for (index_t k = 0; k < K; ++k)
      buf[static_cast<std::size_t>(idx.at(k, m))] = op_at(A, trans, m, k);
  return buf;
}

template <typename T>
std::vector<T> pack_b(const Matrix<T>& B, Transpose trans, index_t K,
                      index_t N, index_t Kp, index_t Np, BlockLayout layout,
                      index_t Kwg, index_t Nwg) {
  PackedIndexer idx(layout, Kp, Np, Kwg, Nwg);
  std::vector<T> buf(static_cast<std::size_t>(idx.size()), T{});
  for (index_t k = 0; k < K; ++k)
    for (index_t n = 0; n < N; ++n)
      buf[static_cast<std::size_t>(idx.at(k, n))] = op_at(B, trans, k, n);
  return buf;
}

template <typename T>
std::vector<T> pack_c(const Matrix<T>& C, index_t M, index_t N, index_t Mp,
                      index_t Np) {
  std::vector<T> buf(static_cast<std::size_t>(Mp * Np), T{});
  for (index_t m = 0; m < M; ++m)
    for (index_t n = 0; n < N; ++n)
      buf[static_cast<std::size_t>(m * Np + n)] = C.at(m, n);
  return buf;
}

template <typename T>
void unpack_c(const std::vector<T>& buf, index_t Mp, index_t Np, Matrix<T>& C,
              index_t M, index_t N) {
  check(static_cast<index_t>(buf.size()) == Mp * Np, "unpack_c: bad buffer");
  check(M <= Mp && N <= Np, "unpack_c: live region exceeds buffer");
  for (index_t m = 0; m < M; ++m)
    for (index_t n = 0; n < N; ++n)
      C.at(m, n) = buf[static_cast<std::size_t>(m * Np + n)];
}

BlockLayout block_layout_from_string(const std::string& s) {
  if (s == "RM") return BlockLayout::RowMajor;
  if (s == "CBL") return BlockLayout::CBL;
  if (s == "RBL") return BlockLayout::RBL;
  fail("unknown block layout '" + s + "'");
}

// Explicit instantiations for the two precisions the paper evaluates.
template std::vector<float> pack_a(const Matrix<float>&, Transpose, index_t,
                                   index_t, index_t, index_t, BlockLayout,
                                   index_t, index_t);
template std::vector<double> pack_a(const Matrix<double>&, Transpose, index_t,
                                    index_t, index_t, index_t, BlockLayout,
                                    index_t, index_t);
template std::vector<float> pack_b(const Matrix<float>&, Transpose, index_t,
                                   index_t, index_t, index_t, BlockLayout,
                                   index_t, index_t);
template std::vector<double> pack_b(const Matrix<double>&, Transpose, index_t,
                                    index_t, index_t, index_t, BlockLayout,
                                    index_t, index_t);
template std::vector<float> pack_c(const Matrix<float>&, index_t, index_t,
                                   index_t, index_t);
template std::vector<double> pack_c(const Matrix<double>&, index_t, index_t,
                                    index_t, index_t);
template void unpack_c(const std::vector<float>&, index_t, index_t,
                       Matrix<float>&, index_t, index_t);
template void unpack_c(const std::vector<double>&, index_t, index_t,
                       Matrix<double>&, index_t, index_t);

}  // namespace gemmtune
