#include "layout/packing.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace gemmtune {

PackedExtents packed_extents(index_t M, index_t N, index_t K, index_t Mwg,
                             index_t Nwg, index_t Kwg) {
  check(M > 0 && N > 0 && K > 0, "packed_extents: empty problem");
  check(Mwg > 0 && Nwg > 0 && Kwg > 0, "packed_extents: bad blocking");
  return PackedExtents{round_up(M, Mwg), round_up(N, Nwg), round_up(K, Kwg)};
}

namespace {

// The pack loops avoid Matrix::at / PackedIndexer::at per element: both
// resolve strides and layout per call. Instead the source is read through
// two strides (one per logical index of the transposed operand) and the
// destination offset is computed per layout with the block coordinates
// hoisted out of the inner loops. Work is cut into cache-sized row tiles
// and the tiles are spread over the thread pool; every (row, col) pair is
// written by exactly one tile, and each element's value and location depend
// only on its indices, so the buffer is byte-identical at any thread count.
constexpr index_t kRowTile = 64;
constexpr index_t kColTile = 256;

// Strides of logical element (r, c) of op(X): offset = r * sr + c * sc.
template <typename T>
void op_strides(const Matrix<T>& X, Transpose trans, index_t* sr,
                index_t* sc) {
  const index_t rs = X.order() == StorageOrder::RowMajor ? X.ld() : 1;
  const index_t cs = X.order() == StorageOrder::RowMajor ? 1 : X.ld();
  *sr = trans == Transpose::No ? rs : cs;
  *sc = trans == Transpose::No ? cs : rs;
}

// Validates that op(X) covers rows x cols, with the same diagnostic the
// per-element Matrix accessor would have produced.
template <typename T>
void check_op_extent(const Matrix<T>& X, Transpose trans, index_t rows,
                     index_t cols) {
  const index_t pr = trans == Transpose::No ? rows : cols;
  const index_t pc = trans == Transpose::No ? cols : rows;
  check(pr <= X.rows() && pc <= X.cols(), "Matrix: index out of range");
}

// Copies the live `rows x cols` region into `dst`: dst[off(r, c)] =
// src[r * sr + c * sc]. The caller picks (sr, sc) so that the buffer's
// (row, col) indices address the right source element — swapping the
// operand's strides expresses a transpose-into-buffer with no extra code.
template <typename T, typename DstOff>
void pack_tiles(const T* src, index_t sr, index_t sc, index_t rows,
                index_t cols, T* dst, DstOff off) {
  const index_t n_rtiles = (rows + kRowTile - 1) / kRowTile;
  ThreadPool::global().parallel_for(
      n_rtiles, [&](std::int64_t tb, std::int64_t te, int) {
        for (index_t rt = tb; rt < te; ++rt) {
          const index_t r0 = rt * kRowTile;
          const index_t r1 = std::min(r0 + kRowTile, rows);
          for (index_t c0 = 0; c0 < cols; c0 += kColTile) {
            const index_t c1 = std::min(c0 + kColTile, cols);
            for (index_t r = r0; r < r1; ++r)
              for (index_t c = c0; c < c1; ++c)
                dst[off(r, c)] = src[r * sr + c * sc];
          }
        }
      });
}

// Layout-specialized destination offsets for a rows x cols packed matrix
// with (rblock, cblock) blocking; formulas match PackedIndexer::at.
template <typename T, typename F>
void dispatch_layout(BlockLayout layout, index_t rows, index_t cols,
                     index_t rblock, index_t cblock, F run) {
  (void)rows;
  switch (layout) {
    case BlockLayout::RowMajor:
      run([cols](index_t r, index_t c) { return r * cols + c; });
      return;
    case BlockLayout::CBL: {
      const index_t blk = rows * cblock;
      run([blk, cblock](index_t r, index_t c) {
        return (c / cblock) * blk + r * cblock + c % cblock;
      });
      return;
    }
    case BlockLayout::RBL: {
      const index_t rowblk = rblock * cols;
      const index_t blk = rblock * cblock;
      run([rowblk, blk, rblock, cblock](index_t r, index_t c) {
        return (r / rblock) * rowblk + (c / cblock) * blk +
               (r % rblock) * cblock + c % cblock;
      });
      return;
    }
  }
  fail("pack: bad layout");
}

}  // namespace

template <typename T>
std::vector<T> pack_a(const Matrix<T>& A, Transpose trans, index_t M,
                      index_t K, index_t Mp, index_t Kp, BlockLayout layout,
                      index_t Mwg, index_t Kwg) {
  PackedIndexer idx(layout, Kp, Mp, Kwg, Mwg);  // validates extents/blocking
  std::vector<T> buf(static_cast<std::size_t>(idx.size()), T{});
  // op(A) is M x K; the buffer stores op(A)^T, i.e. element (k, m).
  check_op_extent(A, trans, M, K);
  index_t sm = 0, sk = 0;
  op_strides(A, trans, &sm, &sk);
  dispatch_layout<T>(layout, Kp, Mp, Kwg, Mwg, [&](auto off) {
    // Buffer row index = k (stride sk in the source), column index = m.
    pack_tiles(A.data(), sk, sm, K, M, buf.data(), off);
  });
  return buf;
}

template <typename T>
std::vector<T> pack_b(const Matrix<T>& B, Transpose trans, index_t K,
                      index_t N, index_t Kp, index_t Np, BlockLayout layout,
                      index_t Kwg, index_t Nwg) {
  PackedIndexer idx(layout, Kp, Np, Kwg, Nwg);
  std::vector<T> buf(static_cast<std::size_t>(idx.size()), T{});
  // op(B) is K x N and is stored as-is: buffer element (k, n).
  check_op_extent(B, trans, K, N);
  index_t sk = 0, sn = 0;
  op_strides(B, trans, &sk, &sn);
  dispatch_layout<T>(layout, Kp, Np, Kwg, Nwg, [&](auto off) {
    pack_tiles(B.data(), sk, sn, K, N, buf.data(), off);
  });
  return buf;
}

template <typename T>
std::vector<T> pack_c(const Matrix<T>& C, index_t M, index_t N, index_t Mp,
                      index_t Np) {
  std::vector<T> buf(static_cast<std::size_t>(Mp * Np), T{});
  check_op_extent(C, Transpose::No, M, N);
  index_t sm = 0, sn = 0;
  op_strides(C, Transpose::No, &sm, &sn);
  T* dst = buf.data();
  const T* src = C.data();
  const index_t n_rtiles = (M + kRowTile - 1) / kRowTile;
  ThreadPool::global().parallel_for(
      n_rtiles, [&](std::int64_t tb, std::int64_t te, int) {
        for (index_t rt = tb; rt < te; ++rt) {
          const index_t m1 = std::min(rt * kRowTile + kRowTile, M);
          for (index_t m = rt * kRowTile; m < m1; ++m) {
            if (sn == 1) {
              std::copy_n(src + m * sm, N, dst + m * Np);
            } else {
              for (index_t n = 0; n < N; ++n)
                dst[m * Np + n] = src[m * sm + n * sn];
            }
          }
        }
      });
  return buf;
}

template <typename T>
void unpack_c(const std::vector<T>& buf, index_t Mp, index_t Np, Matrix<T>& C,
              index_t M, index_t N) {
  check(static_cast<index_t>(buf.size()) == Mp * Np, "unpack_c: bad buffer");
  check(M <= Mp && N <= Np, "unpack_c: live region exceeds buffer");
  check_op_extent(C, Transpose::No, M, N);
  index_t sm = 0, sn = 0;
  op_strides(C, Transpose::No, &sm, &sn);
  T* dst = C.data();
  const T* src = buf.data();
  const index_t n_rtiles = (M + kRowTile - 1) / kRowTile;
  ThreadPool::global().parallel_for(
      n_rtiles, [&](std::int64_t tb, std::int64_t te, int) {
        for (index_t rt = tb; rt < te; ++rt) {
          const index_t m1 = std::min(rt * kRowTile + kRowTile, M);
          for (index_t m = rt * kRowTile; m < m1; ++m) {
            if (sn == 1) {
              std::copy_n(src + m * Np, N, dst + m * sm);
            } else {
              for (index_t n = 0; n < N; ++n)
                dst[m * sm + n * sn] = src[m * Np + n];
            }
          }
        }
      });
}

BlockLayout block_layout_from_string(const std::string& s) {
  if (s == "RM") return BlockLayout::RowMajor;
  if (s == "CBL") return BlockLayout::CBL;
  if (s == "RBL") return BlockLayout::RBL;
  fail("unknown block layout '" + s + "'");
}

// Explicit instantiations for the two precisions the paper evaluates.
template std::vector<float> pack_a(const Matrix<float>&, Transpose, index_t,
                                   index_t, index_t, index_t, BlockLayout,
                                   index_t, index_t);
template std::vector<double> pack_a(const Matrix<double>&, Transpose, index_t,
                                    index_t, index_t, index_t, BlockLayout,
                                    index_t, index_t);
template std::vector<float> pack_b(const Matrix<float>&, Transpose, index_t,
                                   index_t, index_t, index_t, BlockLayout,
                                   index_t, index_t);
template std::vector<double> pack_b(const Matrix<double>&, Transpose, index_t,
                                    index_t, index_t, index_t, BlockLayout,
                                    index_t, index_t);
template std::vector<float> pack_c(const Matrix<float>&, index_t, index_t,
                                   index_t, index_t);
template std::vector<double> pack_c(const Matrix<double>&, index_t, index_t,
                                    index_t, index_t);
template void unpack_c(const std::vector<float>&, index_t, index_t,
                       Matrix<float>&, index_t, index_t);
template void unpack_c(const std::vector<double>&, index_t, index_t,
                       Matrix<double>&, index_t, index_t);

}  // namespace gemmtune
