// The four GEMM multiplication types (paper Section III):
//   NN: C <- alpha*A*B + beta*C       NT: C <- alpha*A*B^T + beta*C
//   TN: C <- alpha*A^T*B + beta*C     TT: C <- alpha*A^T*B^T + beta*C
#pragma once

#include <array>
#include <string>

#include "common/error.hpp"
#include "layout/matrix.hpp"

namespace gemmtune {

enum class GemmType { NN, NT, TN, TT };

inline const char* to_string(GemmType t) {
  switch (t) {
    case GemmType::NN: return "NN";
    case GemmType::NT: return "NT";
    case GemmType::TN: return "TN";
    case GemmType::TT: return "TT";
  }
  return "?";
}

inline GemmType gemm_type_from_string(const std::string& s) {
  if (s == "NN") return GemmType::NN;
  if (s == "NT") return GemmType::NT;
  if (s == "TN") return GemmType::TN;
  if (s == "TT") return GemmType::TT;
  fail("gemm_type_from_string: unknown GEMM type '" + s + "'");
}

inline std::array<GemmType, 4> all_gemm_types() {
  return {GemmType::NN, GemmType::NT, GemmType::TN, GemmType::TT};
}

inline Transpose trans_a(GemmType t) {
  return (t == GemmType::TN || t == GemmType::TT) ? Transpose::Yes
                                                  : Transpose::No;
}

inline Transpose trans_b(GemmType t) {
  return (t == GemmType::NT || t == GemmType::TT) ? Transpose::Yes
                                                  : Transpose::No;
}

inline GemmType gemm_type_of(Transpose ta, Transpose tb) {
  if (ta == Transpose::No)
    return tb == Transpose::No ? GemmType::NN : GemmType::NT;
  return tb == Transpose::No ? GemmType::TN : GemmType::TT;
}

}  // namespace gemmtune
