// Host-side packing: copy / transpose / re-layout / zero-pad operand
// matrices into kernel buffers (paper Sections III-D and IV-B).
//
// The GEMM implementation always executes the tuned A^T*B kernel, so every
// host operand is first packed:
//   A operand  -> K x M  transposed matrix, padded to Kp x Mp, layout L_A
//   B operand  -> K x N  matrix,            padded to Kp x Np, layout L_B
//   C operand  -> Mp x Np row-major buffer (input for the beta merge, output
//                 of the kernel)
// Padding uses zeros (the paper's "zero padding technique"), which leaves
// GEMM results unchanged in the live region.
#pragma once

#include <vector>

#include "layout/block_layout.hpp"
#include "layout/matrix.hpp"

namespace gemmtune {

/// Extents of the packed operand buffers for a (possibly padded) problem.
struct PackedExtents {
  index_t Mp = 0;  ///< M rounded up to a multiple of Mwg
  index_t Np = 0;  ///< N rounded up to a multiple of Nwg
  index_t Kp = 0;  ///< K rounded up to a multiple of Kwg
};

/// Computes padded extents for problem (M, N, K) under work-group blocking
/// (Mwg, Nwg, Kwg).
PackedExtents packed_extents(index_t M, index_t N, index_t K, index_t Mwg,
                             index_t Nwg, index_t Kwg);

/// Packs the A operand. `op(A)` is logically M x K; `trans` says whether the
/// stored matrix `A` must be read transposed to obtain op(A). The result
/// holds op(A)^T — a Kp x Mp matrix — in `layout` with (Kwg, Mwg) blocking,
/// zero-padded.
template <typename T>
std::vector<T> pack_a(const Matrix<T>& A, Transpose trans, index_t M,
                      index_t K, index_t Mp, index_t Kp, BlockLayout layout,
                      index_t Mwg, index_t Kwg);

/// Packs the B operand. `op(B)` is logically K x N. The result holds op(B) —
/// a Kp x Np matrix — in `layout` with (Kwg, Nwg) blocking, zero-padded.
template <typename T>
std::vector<T> pack_b(const Matrix<T>& B, Transpose trans, index_t K,
                      index_t N, index_t Kp, index_t Np, BlockLayout layout,
                      index_t Kwg, index_t Nwg);

/// Packs C into a row-major Mp x Np buffer (zero-padded); the kernel reads
/// it for the beta merge and overwrites it with the result.
template <typename T>
std::vector<T> pack_c(const Matrix<T>& C, index_t M, index_t N, index_t Mp,
                      index_t Np);

/// Copies the live M x N region of a row-major Mp x Np kernel buffer back
/// into the host matrix C.
template <typename T>
void unpack_c(const std::vector<T>& buf, index_t Mp, index_t Np, Matrix<T>& C,
              index_t M, index_t N);

/// Reads element (r, c) of a packed operand buffer; test/debug helper that
/// inverts the pack step.
template <typename T>
T packed_at(const std::vector<T>& buf, const PackedIndexer& idx, index_t r,
            index_t c) {
  return buf[static_cast<std::size_t>(idx.at(r, c))];
}

}  // namespace gemmtune
