// Performance models of the closed-source comparator libraries.
//
// The paper compares against vendor BLAS libraries (clBLAS, CUBLAS, MAGMA,
// MKL, ACML, ATLAS) and against the authors' previous implementation [13]
// and related work (Du et al. [12], Nakasato [18]). None of these can run
// here, so each is modelled as a saturating performance curve
//     gflops(n) = sat / (1 + k / n)
// anchored at the paper's own reported numbers: saturation values come from
// Table III (per GEMM type) and the Section IV-C text; the ramp constant k
// reflects the figures' shapes (vendor libraries ramp quickly because they
// do not pay our copy-to-block-layout overhead). DESIGN.md documents this
// substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/params.hpp"
#include "layout/gemm_type.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune::vendor {

/// One modelled comparator on one device.
struct Baseline {
  std::string name;        ///< e.g. "AMD clBLAS 1.8.291"
  simcl::DeviceId device;
  codegen::Precision prec;
  double sat[4];           ///< saturation GFlop/s for NN, NT, TN, TT
  double ramp_k;           ///< size constant of the ramp
};

/// All modelled baselines for a device/precision (the paper's "Vendor" row
/// of Table III plus the extra curves of Figs. 9-11).
std::vector<Baseline> baselines(simcl::DeviceId id, codegen::Precision prec);

/// The vendor library of Table III for the device ("Vendor" row).
const Baseline& table3_vendor(simcl::DeviceId id, codegen::Precision prec);

/// Performance of a baseline at size n (square problem).
double baseline_gflops(const Baseline& b, GemmType type, std::int64_t n);

/// Finds a baseline by name prefix; throws when absent.
const Baseline& baseline_by_name(simcl::DeviceId id, codegen::Precision prec,
                                 const std::string& name_prefix);

}  // namespace gemmtune::vendor
