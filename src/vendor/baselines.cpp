#include "vendor/baselines.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::vendor {

using codegen::Precision;
using simcl::DeviceId;

namespace {

Baseline make(const char* name, DeviceId dev, Precision prec, double nn,
              double nt, double tn, double tt, double k) {
  Baseline b;
  b.name = name;
  b.device = dev;
  b.prec = prec;
  b.sat[0] = nn;
  b.sat[1] = nt;
  b.sat[2] = tn;
  b.sat[3] = tt;
  b.ramp_k = k;
  return b;
}

// Saturation values: Table III "Vendor" rows; extra curves from Figs. 9-11
// and Section IV-C. ramp_k is chosen so curves reach ~90% of saturation
// around N = 2048 on GPUs (k about 220) and N = 768 on CPUs (k about 80),
// matching the figures' fast vendor ramps. The first entry per
// device/precision is the Table III vendor library.
const std::vector<Baseline>& registry() {
  static const std::vector<Baseline> all = [] {
    std::vector<Baseline> v;
    const auto DP = Precision::DP;
    const auto SP = Precision::SP;
    // Tahiti
    v.push_back(make("AMD clBLAS 1.8.291", DeviceId::Tahiti, DP, 647, 731,
                     549, 650, 220));
    // Our previous study [13]: 848 GFlop/s DGEMM / 2646 SGEMM kernels; the
    // implementation curves of Fig. 9 saturate just below those.
    v.push_back(make("Our previous study [13]", DeviceId::Tahiti, DP, 840,
                     843, 838, 840, 300));
    v.push_back(make("AMD clBLAS 1.8.291", DeviceId::Tahiti, SP, 2468, 2489,
                     1476, 2281, 220));
    v.push_back(make("Our previous study [13]", DeviceId::Tahiti, SP, 2610,
                     2620, 2600, 2610, 300));
    // Cayman
    v.push_back(make("AMD clBLAS 1.8.291", DeviceId::Cayman, DP, 329, 336,
                     302, 329, 220));
    v.push_back(make("AMD clBLAS 1.8.291", DeviceId::Cayman, SP, 1071, 1011,
                     662, 1021, 220));
    // Kepler
    v.push_back(make("NVIDIA CUBLAS 5.0 RC", DeviceId::Kepler, DP, 124, 122,
                     122, 122, 180));
    v.push_back(make("NVIDIA CUBLAS 5.0 RC", DeviceId::Kepler, SP, 1371,
                     1417, 1227, 1361, 180));
    // Fermi (MAGMA 1.2.1 appears in Fig. 10 alongside CUBLAS 4.1.28)
    v.push_back(make("NVIDIA CUBLAS 4.1.28", DeviceId::Fermi, DP, 405, 406,
                     408, 405, 180));
    v.push_back(
        make("MAGMA 1.2.1", DeviceId::Fermi, DP, 390, 392, 394, 391, 210));
    v.push_back(make("NVIDIA CUBLAS 4.1.28", DeviceId::Fermi, SP, 830, 942,
                     920, 889, 180));
    v.push_back(
        make("MAGMA 1.2.1", DeviceId::Fermi, SP, 860, 900, 890, 880, 210));
    // Sandy Bridge (ATLAS and the older Intel SDK build appear in Fig. 11)
    v.push_back(make("Intel MKL 2011.10.319", DeviceId::SandyBridge, DP,
                     138, 139, 138, 138, 80));
    v.push_back(make("ATLAS 3.10.0", DeviceId::SandyBridge, DP, 100, 100,
                     100, 100, 110));
    // "Using the newer SDK improves the performance by around 20%."
    v.push_back(make("This study (Intel SDK 2012)", DeviceId::SandyBridge,
                     DP, 50, 50, 50, 50, 260));
    v.push_back(make("Intel MKL 2011.10.319", DeviceId::SandyBridge, SP,
                     282, 285, 281, 283, 80));
    // Bulldozer
    v.push_back(
        make("AMD ACML 5.1.0", DeviceId::Bulldozer, DP, 50, 50, 50, 50, 80));
    v.push_back(make("AMD ACML 5.1.0", DeviceId::Bulldozer, SP, 103, 101,
                     103, 101, 80));
    // Cypress (Section IV-C comparators on the Radeon HD 5870)
    v.push_back(make("Nakasato IL kernel [18]", DeviceId::Cypress, DP, 498,
                     498, 498, 498, 260));
    v.push_back(make("Du et al. OpenCL [12]", DeviceId::Cypress, DP, 308,
                     308, 308, 308, 260));
    v.push_back(make("Nakasato IL kernel [18]", DeviceId::Cypress, SP, 2000,
                     2000, 2000, 2000, 260));
    return v;
  }();
  return all;
}

}  // namespace

std::vector<Baseline> baselines(DeviceId id, Precision prec) {
  std::vector<Baseline> out;
  for (const auto& b : registry()) {
    if (b.device == id && b.prec == prec) out.push_back(b);
  }
  return out;
}

const Baseline& table3_vendor(DeviceId id, Precision prec) {
  for (const auto& b : registry()) {
    if (b.device == id && b.prec == prec) return b;
  }
  fail("table3_vendor: no baseline for " + simcl::to_string(id));
}

double baseline_gflops(const Baseline& b, GemmType type, std::int64_t n) {
  check(n > 0, "baseline_gflops: bad size");
  const double sat = b.sat[static_cast<int>(type)];
  return sat / (1.0 + b.ramp_k / static_cast<double>(n));
}

const Baseline& baseline_by_name(DeviceId id, Precision prec,
                                 const std::string& name_prefix) {
  for (const auto& b : registry()) {
    if (b.device == id && b.prec == prec && starts_with(b.name, name_prefix))
      return b;
  }
  fail("baseline_by_name: no baseline '" + name_prefix + "' on " +
       simcl::to_string(id));
}

}  // namespace gemmtune::vendor
