// Public GEMM API (paper Section IV-B).
//
// GemmEngine implements the paper's GEMM routines on a simulated device:
// every multiplication type (NN/NT/TN/TT, column-major host matrices) is
// performed by packing the operands into block-major, zero-padded device
// buffers — transposing as needed — and running the device's tuned
// C <- alpha*A^T*B + beta*C kernel, then unpacking the result.
//
// Two entry points:
//  * gemm<T>(): functionally executes the real generated kernel through the
//    lockstep interpreter on real data (use moderate sizes; interpretation
//    costs real host time) and reports the simulated device timing.
//  * estimate(): timing only, any size — this is what the benchmark
//    harnesses sweep to regenerate the paper's figures.
#pragma once

#include <memory>
#include <optional>

#include "codegen/params.hpp"
#include "layout/gemm_type.hpp"
#include "layout/matrix.hpp"
#include "perfmodel/model.hpp"
#include "simcl/runtime.hpp"
#include "tuner/results_db.hpp"

namespace gemmtune::blas {

/// Simulated-time breakdown of one GEMM call.
struct GemmProfile {
  double total_seconds = 0;
  double copy_seconds = 0;    ///< pack A/B/C + unpack C (the O(N^2) part)
  double kernel_seconds = 0;  ///< the tuned A^T*B kernel
  double gflops = 0;  ///< 2*M*N*K / total_seconds (0 when the simulated
                      ///< duration is zero/denormal — tiny problems on
                      ///< fast devices must not report inf)
  /// Maximum absolute error vs. the host reference; only filled by the
  /// functional path when `verify` is requested.
  double max_error = -1;
  /// True when the copy-free direct kernel was used (the paper's future-
  /// work extension for small sizes, Section V).
  bool used_direct = false;
};

/// GEMM engine bound to one simulated device and a tuning database.
class GemmEngine {
 public:
  /// Uses the given database; kernels for a precision are taken from it
  /// (falling back to a paper-seeded profile on a miss).
  explicit GemmEngine(simcl::DeviceId id);
  GemmEngine(simcl::DeviceId id, tuner::TunedDatabase db);

  simcl::DeviceId device_id() const { return id_; }
  const perfmodel::PerfModel& model() const { return model_; }

  /// The tuned kernel used for a precision.
  const tuner::TunedKernel& kernel_for(codegen::Precision prec);

  /// Functional GEMM: C <- alpha*op(A)*op(B) + beta*C on column-major host
  /// matrices. Runs the generated kernel in the interpreter against SimCL
  /// buffers; returns the simulated-time profile. With `verify` true, also
  /// compares against the host reference and fills max_error.
  template <typename T>
  GemmProfile gemm(Transpose ta, Transpose tb, index_t M, index_t N,
                   index_t K, T alpha, const Matrix<T>& A, const Matrix<T>& B,
                   T beta, Matrix<T>& C, bool verify = false);

  /// Timing-only GEMM estimate for an arbitrary problem size.
  GemmProfile estimate(GemmType type, codegen::Precision prec, index_t M,
                       index_t N, index_t K);

  /// Convenience: estimated GFlop/s on a square problem.
  double estimate_gflops(GemmType type, codegen::Precision prec, index_t n);

  /// Enables/disables the copy-free small-size kernel (default on).
  void set_direct_path(bool enabled) { direct_enabled_ = enabled; }

 private:
  /// Prices the problem through tuner::shape_cost (packed vs. guarded
  /// direct path) and converts the winner to a GemmProfile. Throws when
  /// the model rejects the packed kernel.
  GemmProfile profile_for(const codegen::KernelParams& p, index_t M,
                          index_t N, index_t K);

  simcl::DeviceId id_;
  perfmodel::PerfModel model_;
  tuner::TunedDatabase db_;
  bool direct_enabled_ = true;
};

}  // namespace gemmtune::blas
