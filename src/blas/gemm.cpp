#include "blas/gemm.hpp"

#include <cstring>

#include "blas/hostblas.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "trace/trace.hpp"
#include "tuner/shape.hpp"

namespace gemmtune::blas {

using codegen::GemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;

GemmEngine::GemmEngine(simcl::DeviceId id) : id_(id), model_(id) {}

GemmEngine::GemmEngine(simcl::DeviceId id, tuner::TunedDatabase db)
    : id_(id), model_(id), db_(std::move(db)) {}

const tuner::TunedKernel& GemmEngine::kernel_for(Precision prec) {
  if (!db_.find(id_, prec)) {
    // Seed with the paper's kernel rather than running a full search; a
    // caller who wants freshly searched kernels passes a tuned database in.
    db_.put(id_, prec,
            tuner::profile_kernel(id_,
                                  codegen::table2_entry(id_, prec).params));
  }
  return db_.get_or_tune(id_, prec);  // guaranteed hit
}

GemmProfile GemmEngine::profile_for(const KernelParams& p, index_t M,
                                    index_t N, index_t K) {
  // The paper's future-work combination: shape_cost prices the packed path
  // against the copy-free direct kernel and returns whichever is cheaper
  // (direct wins at small sizes where the O(N^2) copy is not amortized).
  const tuner::ShapeCost c =
      tuner::shape_cost(model_, p, M, N, K, direct_enabled_);
  check(c.pack_ok, "GemmEngine: tuned kernel rejected: " + c.reason);
  GemmProfile prof;
  prof.total_seconds = c.seconds;
  prof.copy_seconds = c.copy_seconds;
  prof.kernel_seconds = c.kernel_seconds;
  prof.gflops = c.gflops;
  prof.used_direct = c.used_direct;
  return prof;
}

GemmProfile GemmEngine::estimate(GemmType, Precision prec, index_t M,
                                 index_t N, index_t K) {
  trace::counter_add("gemm.estimates", 1);
  const tuner::TunedKernel& t = kernel_for(prec);
  return profile_for(t.params, M, N, K);
}

double GemmEngine::estimate_gflops(GemmType type, Precision prec,
                                   index_t n) {
  return estimate(type, prec, n, n, n).gflops;
}

template <typename T>
GemmProfile GemmEngine::gemm(Transpose ta, Transpose tb, index_t M,
                             index_t N, index_t K, T alpha,
                             const Matrix<T>& A, const Matrix<T>& B, T beta,
                             Matrix<T>& C, bool verify) {
  constexpr Precision prec =
      std::is_same_v<T, float> ? Precision::SP : Precision::DP;
  trace::Span gemm_span("gemm.gemm");
  trace::counter_add("gemm.calls", 1);
  const tuner::TunedKernel& tuned = kernel_for(prec);
  const KernelParams& p = tuned.params;

  // Small-size path: run the copy-free kernel in place when it wins.
  GemmProfile prof_est = profile_for(p, M, N, K);
  if (prof_est.used_direct) {
    trace::Span direct_span("gemm.direct");
    trace::counter_add("gemm.direct_calls", 1);
    const KernelParams q = tuner::direct_variant(p);
    const bool guarded =
        M % q.Mwg != 0 || N % q.Nwg != 0 || K % q.Kwg != 0;
    const PackedExtents dext = packed_extents(M, N, K, q.Mwg, q.Nwg, q.Kwg);
    Matrix<T> Cin;
    if (verify) Cin = C;
    simcl::Context ctx(simcl::device_spec(id_));
    auto dA = ctx.create_buffer(A.size() * sizeof(T));
    auto dB = ctx.create_buffer(B.size() * sizeof(T));
    auto dC = ctx.create_buffer(C.size() * sizeof(T));
    std::memcpy(dA->data(), A.data(), A.size() * sizeof(T));
    std::memcpy(dB->data(), B.data(), B.size() * sizeof(T));
    std::memcpy(dC->data(), C.data(), C.size() * sizeof(T));
    ir::Kernel kernel =
        codegen::generate_direct_gemm_kernel(q, ta, tb, guarded);
    const auto geo = codegen::launch_geometry(q, dext.Mp, dext.Np);
    std::vector<ir::ArgValue> args(11);
    args[codegen::DirectGemmKernelArgs::C] = ir::ArgValue::of(dC);
    args[codegen::DirectGemmKernelArgs::A] = ir::ArgValue::of(dA);
    args[codegen::DirectGemmKernelArgs::B] = ir::ArgValue::of(dB);
    args[codegen::DirectGemmKernelArgs::M] = ir::ArgValue::of_int(M);
    args[codegen::DirectGemmKernelArgs::N] = ir::ArgValue::of_int(N);
    args[codegen::DirectGemmKernelArgs::K] = ir::ArgValue::of_int(K);
    args[codegen::DirectGemmKernelArgs::lda] = ir::ArgValue::of_int(A.ld());
    args[codegen::DirectGemmKernelArgs::ldb] = ir::ArgValue::of_int(B.ld());
    args[codegen::DirectGemmKernelArgs::ldc] = ir::ArgValue::of_int(C.ld());
    args[codegen::DirectGemmKernelArgs::alpha] = ir::ArgValue::of_float(alpha);
    args[codegen::DirectGemmKernelArgs::beta] = ir::ArgValue::of_float(beta);
    ir::launch(kernel, geo.global, geo.local, args);
    std::memcpy(C.data(), dC->data(), C.size() * sizeof(T));
    GemmProfile prof = prof_est;
    if (verify) {
      Matrix<T> Cref = Cin;
      hostblas::gemm_parallel(ta, tb, M, N, K, alpha, A, B, beta, Cref);
      prof.max_error = max_abs_diff(C, Cref);
    }
    return prof;
  }
  const PackedExtents ext = packed_extents(M, N, K, p.Mwg, p.Nwg, p.Kwg);

  // Host-side packing stands in for the device-side copy kernels; the
  // simulated cost of those kernels is what profile_for charges.
  simcl::Context ctx(simcl::device_spec(id_));
  simcl::BufferPtr dA, dB, dC;
  std::size_t csize = 0;
  {
    trace::Span pack_span("gemm.pack");
    auto abuf =
        pack_a(A, ta, M, K, ext.Mp, ext.Kp, p.layout_a, p.Mwg, p.Kwg);
    auto bbuf =
        pack_b(B, tb, K, N, ext.Kp, ext.Np, p.layout_b, p.Kwg, p.Nwg);
    auto cbuf = pack_c(C, M, N, ext.Mp, ext.Np);
    csize = cbuf.size();
    dA = ctx.create_buffer(abuf.size() * sizeof(T));
    dB = ctx.create_buffer(bbuf.size() * sizeof(T));
    dC = ctx.create_buffer(cbuf.size() * sizeof(T));
    std::memcpy(dA->data(), abuf.data(), abuf.size() * sizeof(T));
    std::memcpy(dB->data(), bbuf.data(), bbuf.size() * sizeof(T));
    std::memcpy(dC->data(), cbuf.data(), cbuf.size() * sizeof(T));
    trace::counter_add(
        "gemm.pack_bytes",
        (abuf.size() + bbuf.size() + cbuf.size()) * sizeof(T));
  }

  {
    trace::Span kernel_span("gemm.kernel");
    ir::Kernel kernel = codegen::generate_gemm_kernel(p);
    const auto geo = codegen::launch_geometry(p, ext.Mp, ext.Np);
    std::vector<ir::ArgValue> args(8);
    args[GemmKernelArgs::C] = ir::ArgValue::of(dC);
    args[GemmKernelArgs::A] = ir::ArgValue::of(dA);
    args[GemmKernelArgs::B] = ir::ArgValue::of(dB);
    args[GemmKernelArgs::M] = ir::ArgValue::of_int(ext.Mp);
    args[GemmKernelArgs::N] = ir::ArgValue::of_int(ext.Np);
    args[GemmKernelArgs::K] = ir::ArgValue::of_int(ext.Kp);
    args[GemmKernelArgs::alpha] = ir::ArgValue::of_float(alpha);
    args[GemmKernelArgs::beta] = ir::ArgValue::of_float(beta);
    ir::launch(kernel, geo.global, geo.local, args);
  }

  Matrix<T> Cin;
  if (verify) Cin = C;
  {
    trace::Span merge_span("gemm.merge");
    std::vector<T> cout(csize);
    std::memcpy(cout.data(), dC->data(), cout.size() * sizeof(T));
    unpack_c(cout, ext.Mp, ext.Np, C, M, N);
    trace::counter_add("gemm.merge_bytes", cout.size() * sizeof(T));
  }

  GemmProfile prof = prof_est;
  if (verify) {
    Matrix<T> Cref = Cin;
    hostblas::gemm_parallel(ta, tb, M, N, K, alpha, A, B, beta, Cref);
    prof.max_error = max_abs_diff(C, Cref);
  }
  return prof;
}

template GemmProfile GemmEngine::gemm(Transpose, Transpose, index_t, index_t,
                                      index_t, float, const Matrix<float>&,
                                      const Matrix<float>&, float,
                                      Matrix<float>&, bool);
template GemmProfile GemmEngine::gemm(Transpose, Transpose, index_t, index_t,
                                      index_t, double, const Matrix<double>&,
                                      const Matrix<double>&, double,
                                      Matrix<double>&, bool);

}  // namespace gemmtune::blas
