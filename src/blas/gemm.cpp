#include "blas/gemm.hpp"

#include <cstring>

#include "blas/hostblas.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "trace/trace.hpp"

namespace gemmtune::blas {

using codegen::GemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;

GemmEngine::GemmEngine(simcl::DeviceId id) : id_(id), model_(id) {}

GemmEngine::GemmEngine(simcl::DeviceId id, tuner::TunedDatabase db)
    : id_(id), model_(id), db_(std::move(db)) {}

const tuner::TunedKernel& GemmEngine::kernel_for(Precision prec) {
  if (!db_.find(id_, prec)) {
    // Seed with the paper's kernel rather than running a full search; a
    // caller who wants freshly searched kernels passes a tuned database in.
    db_.put(id_, prec,
            tuner::profile_kernel(id_,
                                  codegen::table2_entry(id_, prec).params));
  }
  return db_.get_or_tune(id_, prec);  // guaranteed hit
}

GemmProfile GemmEngine::profile_for(const KernelParams& p, index_t M,
                                    index_t N, index_t K) {
  const PackedExtents ext = packed_extents(M, N, K, p.Mwg, p.Nwg, p.Kwg);
  const auto es = static_cast<std::uint64_t>(element_bytes(p.prec));
  GemmProfile prof;
  // Pack A, pack B, pack C, unpack C: each moves one padded buffer through
  // global memory (the paper's copy overhead, amortized as O(N^2)/O(N^3)).
  prof.copy_seconds =
      model_.copy_seconds(es * static_cast<std::uint64_t>(ext.Kp * ext.Mp)) +
      model_.copy_seconds(es * static_cast<std::uint64_t>(ext.Kp * ext.Np)) +
      model_.copy_seconds(es * static_cast<std::uint64_t>(ext.Mp * ext.Np)) +
      model_.copy_seconds(es * static_cast<std::uint64_t>(ext.Mp * ext.Np));
  const auto e = model_.kernel_estimate(p, ext.Mp, ext.Np, ext.Kp);
  check(e.ok, "GemmEngine: tuned kernel rejected: " + e.reason);
  prof.kernel_seconds = e.seconds;
  prof.total_seconds = prof.copy_seconds + prof.kernel_seconds;
  prof.gflops = safe_gflops(2.0 * static_cast<double>(M) *
                                static_cast<double>(N) *
                                static_cast<double>(K),
                            prof.total_seconds);
  return prof;
}

codegen::KernelParams GemmEngine::direct_params(
    const codegen::KernelParams& p) {
  // In-place operands: scalar accesses only; the model treats the strided
  // column-major reads like row-major operands (no block-layout benefit).
  // Non-divisible problems need the guarded variant, which exists for the
  // BA algorithm only — and a bounds-checked small kernel has no use for
  // software pipelining anyway.
  codegen::KernelParams q = p;
  q.vw = 1;
  q.algo = codegen::Algorithm::BA;
  q.layout_a = BlockLayout::RowMajor;
  q.layout_b = BlockLayout::RowMajor;
  return q;
}

std::optional<GemmProfile> GemmEngine::direct_profile_for(
    const codegen::KernelParams& p, index_t M, index_t N, index_t K) {
  if (!direct_enabled_) return std::nullopt;
  const bool guarded =
      M % p.Mwg != 0 || N % p.Nwg != 0 || K % p.Kwg != 0;
  const codegen::KernelParams q = direct_params(p);
  if (validate(q, model_.spec())) return std::nullopt;
  // The model requires tile-aligned extents; the guarded kernel does the
  // padded amount of work (its guards zero the phantom fringe).
  const PackedExtents ext = packed_extents(M, N, K, q.Mwg, q.Nwg, q.Kwg);
  const auto e = model_.kernel_estimate(q, ext.Mp, ext.Np, ext.Kp);
  if (!e.ok) return std::nullopt;
  GemmProfile prof;
  // Strided in-place accesses cost more than the packed kernel's unit-
  // stride block-major reads, and bounds checks add a little on top
  // (see DeviceCalib::direct_penalty).
  prof.kernel_seconds = e.seconds * model_.calib().direct_penalty *
                        (guarded ? 1.08 : 1.0);
  prof.total_seconds = prof.kernel_seconds;
  prof.used_direct = true;
  prof.gflops = safe_gflops(2.0 * static_cast<double>(M) *
                                static_cast<double>(N) *
                                static_cast<double>(K),
                            prof.total_seconds);
  return prof;
}

GemmProfile GemmEngine::estimate(GemmType, Precision prec, index_t M,
                                 index_t N, index_t K) {
  trace::counter_add("gemm.estimates", 1);
  const tuner::TunedKernel& t = kernel_for(prec);
  GemmProfile packed = profile_for(t.params, M, N, K);
  // The paper's future-work combination: use the copy-free kernel when it
  // beats copy + tuned kernel (it wins at small sizes where the O(N^2)
  // copy is not amortized).
  if (const auto direct = direct_profile_for(t.params, M, N, K);
      direct && direct->total_seconds < packed.total_seconds)
    return *direct;
  return packed;
}

double GemmEngine::estimate_gflops(GemmType type, Precision prec,
                                   index_t n) {
  return estimate(type, prec, n, n, n).gflops;
}

template <typename T>
GemmProfile GemmEngine::gemm(Transpose ta, Transpose tb, index_t M,
                             index_t N, index_t K, T alpha,
                             const Matrix<T>& A, const Matrix<T>& B, T beta,
                             Matrix<T>& C, bool verify) {
  constexpr Precision prec =
      std::is_same_v<T, float> ? Precision::SP : Precision::DP;
  trace::Span gemm_span("gemm.gemm");
  trace::counter_add("gemm.calls", 1);
  const tuner::TunedKernel& tuned = kernel_for(prec);
  const KernelParams& p = tuned.params;

  // Small-size path: run the copy-free kernel in place when it wins.
  GemmProfile packed_prof = profile_for(p, M, N, K);
  if (const auto direct = direct_profile_for(p, M, N, K);
      direct && direct->total_seconds < packed_prof.total_seconds) {
    trace::Span direct_span("gemm.direct");
    trace::counter_add("gemm.direct_calls", 1);
    const KernelParams q = direct_params(p);
    const bool guarded =
        M % q.Mwg != 0 || N % q.Nwg != 0 || K % q.Kwg != 0;
    const PackedExtents dext = packed_extents(M, N, K, q.Mwg, q.Nwg, q.Kwg);
    Matrix<T> Cin;
    if (verify) Cin = C;
    simcl::Context ctx(simcl::device_spec(id_));
    auto dA = ctx.create_buffer(A.size() * sizeof(T));
    auto dB = ctx.create_buffer(B.size() * sizeof(T));
    auto dC = ctx.create_buffer(C.size() * sizeof(T));
    std::memcpy(dA->data(), A.data(), A.size() * sizeof(T));
    std::memcpy(dB->data(), B.data(), B.size() * sizeof(T));
    std::memcpy(dC->data(), C.data(), C.size() * sizeof(T));
    ir::Kernel kernel =
        codegen::generate_direct_gemm_kernel(q, ta, tb, guarded);
    const auto geo = codegen::launch_geometry(q, dext.Mp, dext.Np);
    std::vector<ir::ArgValue> args(11);
    args[codegen::DirectGemmKernelArgs::C] = ir::ArgValue::of(dC);
    args[codegen::DirectGemmKernelArgs::A] = ir::ArgValue::of(dA);
    args[codegen::DirectGemmKernelArgs::B] = ir::ArgValue::of(dB);
    args[codegen::DirectGemmKernelArgs::M] = ir::ArgValue::of_int(M);
    args[codegen::DirectGemmKernelArgs::N] = ir::ArgValue::of_int(N);
    args[codegen::DirectGemmKernelArgs::K] = ir::ArgValue::of_int(K);
    args[codegen::DirectGemmKernelArgs::lda] = ir::ArgValue::of_int(A.ld());
    args[codegen::DirectGemmKernelArgs::ldb] = ir::ArgValue::of_int(B.ld());
    args[codegen::DirectGemmKernelArgs::ldc] = ir::ArgValue::of_int(C.ld());
    args[codegen::DirectGemmKernelArgs::alpha] = ir::ArgValue::of_float(alpha);
    args[codegen::DirectGemmKernelArgs::beta] = ir::ArgValue::of_float(beta);
    ir::launch(kernel, geo.global, geo.local, args);
    std::memcpy(C.data(), dC->data(), C.size() * sizeof(T));
    GemmProfile prof = *direct;
    if (verify) {
      Matrix<T> Cref = Cin;
      hostblas::gemm_parallel(ta, tb, M, N, K, alpha, A, B, beta, Cref);
      prof.max_error = max_abs_diff(C, Cref);
    }
    return prof;
  }
  const PackedExtents ext = packed_extents(M, N, K, p.Mwg, p.Nwg, p.Kwg);

  // Host-side packing stands in for the device-side copy kernels; the
  // simulated cost of those kernels is what profile_for charges.
  simcl::Context ctx(simcl::device_spec(id_));
  simcl::BufferPtr dA, dB, dC;
  std::size_t csize = 0;
  {
    trace::Span pack_span("gemm.pack");
    auto abuf =
        pack_a(A, ta, M, K, ext.Mp, ext.Kp, p.layout_a, p.Mwg, p.Kwg);
    auto bbuf =
        pack_b(B, tb, K, N, ext.Kp, ext.Np, p.layout_b, p.Kwg, p.Nwg);
    auto cbuf = pack_c(C, M, N, ext.Mp, ext.Np);
    csize = cbuf.size();
    dA = ctx.create_buffer(abuf.size() * sizeof(T));
    dB = ctx.create_buffer(bbuf.size() * sizeof(T));
    dC = ctx.create_buffer(cbuf.size() * sizeof(T));
    std::memcpy(dA->data(), abuf.data(), abuf.size() * sizeof(T));
    std::memcpy(dB->data(), bbuf.data(), bbuf.size() * sizeof(T));
    std::memcpy(dC->data(), cbuf.data(), cbuf.size() * sizeof(T));
    trace::counter_add(
        "gemm.pack_bytes",
        (abuf.size() + bbuf.size() + cbuf.size()) * sizeof(T));
  }

  {
    trace::Span kernel_span("gemm.kernel");
    ir::Kernel kernel = codegen::generate_gemm_kernel(p);
    const auto geo = codegen::launch_geometry(p, ext.Mp, ext.Np);
    std::vector<ir::ArgValue> args(8);
    args[GemmKernelArgs::C] = ir::ArgValue::of(dC);
    args[GemmKernelArgs::A] = ir::ArgValue::of(dA);
    args[GemmKernelArgs::B] = ir::ArgValue::of(dB);
    args[GemmKernelArgs::M] = ir::ArgValue::of_int(ext.Mp);
    args[GemmKernelArgs::N] = ir::ArgValue::of_int(ext.Np);
    args[GemmKernelArgs::K] = ir::ArgValue::of_int(ext.Kp);
    args[GemmKernelArgs::alpha] = ir::ArgValue::of_float(alpha);
    args[GemmKernelArgs::beta] = ir::ArgValue::of_float(beta);
    ir::launch(kernel, geo.global, geo.local, args);
  }

  Matrix<T> Cin;
  if (verify) Cin = C;
  {
    trace::Span merge_span("gemm.merge");
    std::vector<T> cout(csize);
    std::memcpy(cout.data(), dC->data(), cout.size() * sizeof(T));
    unpack_c(cout, ext.Mp, ext.Np, C, M, N);
    trace::counter_add("gemm.merge_bytes", cout.size() * sizeof(T));
  }

  GemmProfile prof = packed_prof;
  if (verify) {
    Matrix<T> Cref = Cin;
    hostblas::gemm_parallel(ta, tb, M, N, K, alpha, A, B, beta, Cref);
    prof.max_error = max_abs_diff(C, Cref);
  }
  return prof;
}

template GemmProfile GemmEngine::gemm(Transpose, Transpose, index_t, index_t,
                                      index_t, float, const Matrix<float>&,
                                      const Matrix<float>&, float,
                                      Matrix<float>&, bool);
template GemmProfile GemmEngine::gemm(Transpose, Transpose, index_t, index_t,
                                      index_t, double, const Matrix<double>&,
                                      const Matrix<double>&, double,
                                      Matrix<double>&, bool);

}  // namespace gemmtune::blas
