// Host reference GEMM implementations.
//
// Three tiers: a naive triple loop (ground truth in tests), a cache-blocked
// single-thread variant, and a thread-parallel blocked variant. These play
// the role the authors' host-side verification code plays — every device
// kernel result is checked against them — and serve as the CPU fallback in
// the examples.
#pragma once

#include "layout/matrix.hpp"

namespace gemmtune::hostblas {

/// C <- alpha * op(A) * op(B) + beta * C, naive triple loop.
/// op(A) is M x K and op(B) is K x N; C is M x N.
template <typename T>
void gemm_naive(Transpose ta, Transpose tb, index_t M, index_t N, index_t K,
                T alpha, const Matrix<T>& A, const Matrix<T>& B, T beta,
                Matrix<T>& C);

/// Cache-blocked single-threaded GEMM (same contract as gemm_naive).
template <typename T>
void gemm_blocked(Transpose ta, Transpose tb, index_t M, index_t N,
                  index_t K, T alpha, const Matrix<T>& A, const Matrix<T>& B,
                  T beta, Matrix<T>& C, index_t block = 64);

/// Thread-parallel blocked GEMM; `threads` <= 0 uses the hardware count.
template <typename T>
void gemm_parallel(Transpose ta, Transpose tb, index_t M, index_t N,
                   index_t K, T alpha, const Matrix<T>& A,
                   const Matrix<T>& B, T beta, Matrix<T>& C,
                   int threads = 0);

/// Acceptable elementwise tolerance for comparing a K-term accumulation in
/// precision T against the reference (forward-error style bound).
template <typename T>
double gemm_tolerance(index_t K) {
  const double eps = std::is_same_v<T, float> ? 1.2e-7 : 2.3e-16;
  return 8.0 * eps * static_cast<double>(K > 4 ? K : 4);
}

}  // namespace gemmtune::hostblas
