#include "blas/hostblas.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/intmath.hpp"

namespace gemmtune::hostblas {

namespace {

template <typename T>
T op_at(const Matrix<T>& X, Transpose t, index_t r, index_t c) {
  return t == Transpose::No ? X.at(r, c) : X.at(c, r);
}

template <typename T>
void check_shapes(Transpose ta, Transpose tb, index_t M, index_t N,
                  index_t K, const Matrix<T>& A, const Matrix<T>& B,
                  const Matrix<T>& C) {
  const index_t ar = ta == Transpose::No ? M : K;
  const index_t ac = ta == Transpose::No ? K : M;
  const index_t br = tb == Transpose::No ? K : N;
  const index_t bc = tb == Transpose::No ? N : K;
  check(A.rows() >= ar && A.cols() >= ac, "gemm: A too small");
  check(B.rows() >= br && B.cols() >= bc, "gemm: B too small");
  check(C.rows() >= M && C.cols() >= N, "gemm: C too small");
}

// Computes rows [m0, m1) of C for the blocked algorithm.
template <typename T>
void blocked_rows(Transpose ta, Transpose tb, index_t m0, index_t m1,
                  index_t N, index_t K, T alpha, const Matrix<T>& A,
                  const Matrix<T>& B, T beta, Matrix<T>& C, index_t block) {
  for (index_t m = m0; m < m1; ++m)
    for (index_t n = 0; n < N; ++n) C.at(m, n) = beta * C.at(m, n);
  for (index_t kb = 0; kb < K; kb += block) {
    const index_t ke = std::min(K, kb + block);
    for (index_t mb = m0; mb < m1; mb += block) {
      const index_t me = std::min(m1, mb + block);
      for (index_t nb = 0; nb < N; nb += block) {
        const index_t ne = std::min(N, nb + block);
        for (index_t m = mb; m < me; ++m) {
          for (index_t k = kb; k < ke; ++k) {
            const T a = alpha * op_at(A, ta, m, k);
            for (index_t n = nb; n < ne; ++n)
              C.at(m, n) += a * op_at(B, tb, k, n);
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm_naive(Transpose ta, Transpose tb, index_t M, index_t N, index_t K,
                T alpha, const Matrix<T>& A, const Matrix<T>& B, T beta,
                Matrix<T>& C) {
  check_shapes(ta, tb, M, N, K, A, B, C);
  for (index_t m = 0; m < M; ++m) {
    for (index_t n = 0; n < N; ++n) {
      T acc{};
      for (index_t k = 0; k < K; ++k)
        acc += op_at(A, ta, m, k) * op_at(B, tb, k, n);
      C.at(m, n) = alpha * acc + beta * C.at(m, n);
    }
  }
}

template <typename T>
void gemm_blocked(Transpose ta, Transpose tb, index_t M, index_t N,
                  index_t K, T alpha, const Matrix<T>& A, const Matrix<T>& B,
                  T beta, Matrix<T>& C, index_t block) {
  check_shapes(ta, tb, M, N, K, A, B, C);
  check(block > 0, "gemm_blocked: bad block size");
  blocked_rows(ta, tb, index_t{0}, M, N, K, alpha, A, B, beta, C, block);
}

template <typename T>
void gemm_parallel(Transpose ta, Transpose tb, index_t M, index_t N,
                   index_t K, T alpha, const Matrix<T>& A,
                   const Matrix<T>& B, T beta, Matrix<T>& C, int threads) {
  check_shapes(ta, tb, M, N, K, A, B, C);
  int nt = threads > 0
               ? threads
               : static_cast<int>(std::thread::hardware_concurrency());
  if (nt < 1) nt = 1;
  nt = static_cast<int>(std::min<index_t>(nt, M));
  if (nt <= 1) {
    blocked_rows(ta, tb, index_t{0}, M, N, K, alpha, A, B, beta, C, 64);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nt));
  const index_t chunk = ceil_div(M, nt);
  for (int t = 0; t < nt; ++t) {
    const index_t m0 = t * chunk;
    const index_t m1 = std::min(M, m0 + chunk);
    if (m0 >= m1) break;
    pool.emplace_back([&, m0, m1] {
      blocked_rows(ta, tb, m0, m1, N, K, alpha, A, B, beta, C, index_t{64});
    });
  }
  for (auto& th : pool) th.join();
}

template void gemm_naive(Transpose, Transpose, index_t, index_t, index_t,
                         float, const Matrix<float>&, const Matrix<float>&,
                         float, Matrix<float>&);
template void gemm_naive(Transpose, Transpose, index_t, index_t, index_t,
                         double, const Matrix<double>&,
                         const Matrix<double>&, double, Matrix<double>&);
template void gemm_blocked(Transpose, Transpose, index_t, index_t, index_t,
                           float, const Matrix<float>&, const Matrix<float>&,
                           float, Matrix<float>&, index_t);
template void gemm_blocked(Transpose, Transpose, index_t, index_t, index_t,
                           double, const Matrix<double>&,
                           const Matrix<double>&, double, Matrix<double>&,
                           index_t);
template void gemm_parallel(Transpose, Transpose, index_t, index_t, index_t,
                            float, const Matrix<float>&,
                            const Matrix<float>&, float, Matrix<float>&,
                            int);
template void gemm_parallel(Transpose, Transpose, index_t, index_t, index_t,
                            double, const Matrix<double>&,
                            const Matrix<double>&, double, Matrix<double>&,
                            int);

}  // namespace gemmtune::hostblas
