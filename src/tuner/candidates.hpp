// Heuristic candidate enumeration for the auto-tuner (paper Section III-F:
// "We searched tens of thousands of kernel variants per single GEMM type
// ... Those many variants were heuristically chosen").
//
// The enumeration walks the cross product of discretized parameter values,
// prunes structurally invalid sets via codegen::validate, and (when the
// space exceeds the budget) subsamples deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/params.hpp"
#include "layout/block_layout.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune::tuner {

/// Enumeration controls.
struct EnumOptions {
  int max_candidates = 20000;   ///< budget after validation
  std::uint64_t seed = 1;       ///< subsampling determinism
  bool include_row_major = false;  ///< also enumerate RM operand layouts

  /// Worker threads for the validation sweep (the cross-product walk).
  /// 0 uses the process-wide configuration. The candidate list is
  /// bit-identical for every thread count: validation fans out, but the
  /// reservoir subsample runs serially in walk order.
  int threads = 0;
};

/// Statistics from one enumeration run (the paper reports that failed
/// kernels "are not counted" toward the tested variants).
struct EnumStats {
  std::int64_t raw_combinations = 0;  ///< cross-product size visited
  std::int64_t invalid = 0;           ///< rejected by validate()
  std::int64_t kept = 0;              ///< returned candidates
};

/// Enumerates valid kernel parameter sets for the device/precision.
std::vector<codegen::KernelParams> enumerate_candidates(
    simcl::DeviceId id, codegen::Precision prec, const EnumOptions& opt,
    EnumStats* stats = nullptr);

/// The discretized value lists the enumerator walks. Guided strategies
/// (annealing / PSO neighbor moves) step along exactly these axes so every
/// point they can propose is a point the exhaustive walk could visit.
struct GridAxes {
  std::vector<int> Mwg, Nwg, Kwg, dim, Kwi, vw;
  std::vector<BlockLayout> layouts;
};
GridAxes grid_axes(bool include_row_major);

}  // namespace gemmtune::tuner
