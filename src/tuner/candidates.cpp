#include "tuner/candidates.hpp"

#include <algorithm>
#include <iterator>
#include <optional>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace gemmtune::tuner {

using codegen::Algorithm;
using codegen::KernelParams;
using codegen::Precision;

namespace {

// Discretized parameter values. Since the improved generator the paper
// describes, blocking factors are no longer restricted to powers of two
// (Section III-F), so multiples of 8/16/24 appear throughout.
constexpr int kMwg[] = {16, 32, 48, 64, 96, 128};
constexpr int kNwg[] = {16, 32, 48, 64, 96, 128};
constexpr int kKwg[] = {8, 16, 32, 48, 64, 96, 192};
constexpr int kDim[] = {4, 8, 16, 24, 32};
constexpr int kKwi[] = {1, 2, 4, 8, 16, 24};
constexpr int kVw[] = {1, 2, 4, 8};

}  // namespace

GridAxes grid_axes(bool include_row_major) {
  GridAxes g;
  g.Mwg.assign(std::begin(kMwg), std::end(kMwg));
  g.Nwg.assign(std::begin(kNwg), std::end(kNwg));
  g.Kwg.assign(std::begin(kKwg), std::end(kKwg));
  g.dim.assign(std::begin(kDim), std::end(kDim));
  g.Kwi.assign(std::begin(kKwi), std::end(kKwi));
  g.vw.assign(std::begin(kVw), std::end(kVw));
  g.layouts = {BlockLayout::CBL, BlockLayout::RBL};
  if (include_row_major) g.layouts.push_back(BlockLayout::RowMajor);
  return g;
}

std::vector<KernelParams> enumerate_candidates(simcl::DeviceId id,
                                               Precision prec,
                                               const EnumOptions& opt,
                                               EnumStats* stats) {
  const simcl::DeviceSpec& dev = simcl::device_spec(id);
  EnumStats st;

  std::vector<BlockLayout> layouts = {BlockLayout::CBL, BlockLayout::RBL};
  if (opt.include_row_major) layouts.push_back(BlockLayout::RowMajor);

  // The expensive part — walking the cross product and validating every
  // combination — fans out over (Mwg, Nwg) chunks. Chunk index order
  // equals the serial nested-loop walk order, so concatenating the chunk
  // outputs reproduces the serial visit sequence exactly.
  constexpr int nM = static_cast<int>(std::size(kMwg));
  constexpr int nN = static_cast<int>(std::size(kNwg));
  struct ChunkOut {
    std::vector<KernelParams> valid;
    std::int64_t raw = 0, invalid = 0;
  };
  std::vector<ChunkOut> chunks(static_cast<std::size_t>(nM * nN));
  auto enumerate_chunk = [&](std::int64_t ci) {
    ChunkOut& co = chunks[static_cast<std::size_t>(ci)];
    const int Mwg = kMwg[ci / nN];
    const int Nwg = kNwg[ci % nN];
      for (int Kwg : kKwg) {
        for (int MdimC : kDim) {
          if (Mwg % MdimC != 0) continue;
          for (int NdimC : kDim) {
            if (Nwg % NdimC != 0) continue;
            const int wg = MdimC * NdimC;
            if (wg > dev.max_workgroup_size || wg < 16) continue;
            // Heuristic: keep work-item tiles in the region the paper's
            // generator explored (Table II never exceeds Mwi=8, Nwi=12);
            // 2012-era OpenCL compilers could not keep larger register
            // tiles resident without catastrophic spilling.
            const int Mwi = Mwg / MdimC;
            const int Nwi = Nwg / NdimC;
            if (Mwi > 8 || Nwi > 12) continue;
            for (int Kwi : kKwi) {
              if (Kwg % Kwi != 0) continue;
              for (int vw : kVw) {
                if (Mwi % vw != 0 || Nwi % vw != 0) continue;
                for (int share = 0; share < 4; ++share) {
                  for (Algorithm algo :
                       {Algorithm::BA, Algorithm::PL, Algorithm::DB}) {
                    if (algo != Algorithm::BA && share == 0) continue;
                    // Heuristic reshapes: natural (MdimC) and a flat one.
                    for (int MdimA :
                         {MdimC, wg >= 2 * MdimC ? 2 * MdimC : MdimC}) {
                      for (int NdimB :
                           {NdimC, wg >= 2 * NdimC ? 2 * NdimC : NdimC}) {
                        for (int stride = 0; stride < 4; ++stride) {
                          for (BlockLayout la : layouts) {
                            for (BlockLayout lb : layouts) {
                              ++co.raw;
                              KernelParams p;
                              p.prec = prec;
                              p.Mwg = Mwg;
                              p.Nwg = Nwg;
                              p.Kwg = Kwg;
                              p.MdimC = MdimC;
                              p.NdimC = NdimC;
                              p.MdimA = MdimA;
                              p.NdimB = NdimB;
                              p.Kwi = Kwi;
                              p.vw = vw;
                              p.share_a = (share & 1) != 0;
                              p.share_b = (share & 2) != 0;
                              p.stride_m = (stride & 1) != 0;
                              p.stride_n = (stride & 2) != 0;
                              p.layout_a = la;
                              p.layout_b = lb;
                              p.algo = algo;
                              if (validate(p, dev)) {
                                ++co.invalid;
                                continue;
                              }
                              co.valid.push_back(p);
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
  };

  {
    std::optional<ThreadPool> local_pool;
    if (opt.threads > 0) local_pool.emplace(opt.threads);
    ThreadPool& pool = local_pool ? *local_pool : ThreadPool::global();
    pool.parallel_for(nM * nN,
                      [&](std::int64_t begin, std::int64_t end, int) {
                        for (std::int64_t ci = begin; ci < end; ++ci)
                          enumerate_chunk(ci);
                      });
  }

  // Reservoir-sample into the budget so a huge space degrades gracefully
  // into a uniform subsample rather than a prefix-biased one. This pass is
  // cheap and runs serially in walk order, so the kept set (and the RNG
  // sequence behind it) is bit-identical to the single-threaded walk.
  std::vector<KernelParams> out;
  Rng rng(opt.seed ^ 0xC0FFEEu);
  auto keep = [&](const KernelParams& p) {
    ++st.kept;
    if (static_cast<int>(out.size()) < opt.max_candidates) {
      out.push_back(p);
    } else {
      const std::uint64_t j =
          rng.next_below(static_cast<std::uint64_t>(st.kept));
      if (j < static_cast<std::uint64_t>(opt.max_candidates))
        out[static_cast<std::size_t>(j)] = p;
    }
  };
  for (const ChunkOut& co : chunks) {
    st.raw_combinations += co.raw;
    st.invalid += co.invalid;
    for (const KernelParams& p : co.valid) keep(p);
  }

  if (stats) *stats = st;
  std::sort(out.begin(), out.end(),
            [](const KernelParams& a, const KernelParams& b) {
              return a.key() < b.key();
            });
  return out;
}

}  // namespace gemmtune::tuner
