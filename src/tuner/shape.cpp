#include "tuner/shape.hpp"

#include "common/stats.hpp"
#include "layout/packing.hpp"

namespace gemmtune::tuner {

using codegen::KernelParams;

KernelParams direct_variant(const KernelParams& p) {
  KernelParams q = p;
  q.vw = 1;
  q.algo = codegen::Algorithm::BA;
  q.layout_a = BlockLayout::RowMajor;
  q.layout_b = BlockLayout::RowMajor;
  return q;
}

ShapeCost shape_cost(const perfmodel::PerfModel& model, const KernelParams& p,
                     index_t M, index_t N, index_t K, bool direct_enabled) {
  ShapeCost out;
  const double flops = 2.0 * static_cast<double>(M) *
                       static_cast<double>(N) * static_cast<double>(K);

  // Packed path: pack A, pack B, pack C, unpack C — each moves one padded
  // buffer through global memory (the paper's copy overhead, amortized as
  // O(N^2)/O(N^3)) — then the tuned kernel on the padded extents.
  {
    const PackedExtents ext = packed_extents(M, N, K, p.Mwg, p.Nwg, p.Kwg);
    const auto es = static_cast<std::uint64_t>(element_bytes(p.prec));
    const double copy =
        model.copy_seconds(es * static_cast<std::uint64_t>(ext.Kp * ext.Mp)) +
        model.copy_seconds(es * static_cast<std::uint64_t>(ext.Kp * ext.Np)) +
        model.copy_seconds(es * static_cast<std::uint64_t>(ext.Mp * ext.Np)) +
        model.copy_seconds(es * static_cast<std::uint64_t>(ext.Mp * ext.Np));
    const auto e = model.kernel_estimate(p, ext.Mp, ext.Np, ext.Kp);
    if (e.ok) {
      out.ok = out.pack_ok = true;
      out.copy_seconds = copy;
      out.kernel_seconds = e.seconds;
      out.seconds = copy + e.seconds;
    } else {
      out.reason = e.reason;
    }
  }

  // Direct path: run the guarded in-place kernel when it is usable and
  // cheaper (it wins at small sizes where the O(N^2) copy is not
  // amortized). Strided in-place accesses cost more than the packed
  // kernel's unit-stride block-major reads, and bounds checks add a little
  // on top.
  if (direct_enabled) {
    const KernelParams q = direct_variant(p);
    if (!validate(q, model.spec())) {
      const bool guarded =
          M % q.Mwg != 0 || N % q.Nwg != 0 || K % q.Kwg != 0;
      // The model requires tile-aligned extents; the guarded kernel does
      // the padded amount of work (its guards zero the phantom fringe).
      const PackedExtents ext = packed_extents(M, N, K, q.Mwg, q.Nwg, q.Kwg);
      const auto e = model.kernel_estimate(q, ext.Mp, ext.Np, ext.Kp);
      if (e.ok) {
        const double secs = e.seconds * model.calib().direct_penalty *
                            (guarded ? kDirectGuardPenalty : 1.0);
        if (!out.ok || secs < out.seconds) {
          out.ok = true;
          out.used_direct = true;
          out.copy_seconds = 0;
          out.kernel_seconds = secs;
          out.seconds = secs;
        }
      }
    }
  }

  if (out.ok) out.gflops = safe_gflops(flops, out.seconds);
  return out;
}

}  // namespace gemmtune::tuner
