#include "tuner/results_db.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace gemmtune::tuner {

using codegen::KernelParams;
using codegen::Precision;

TunedKernel profile_kernel(simcl::DeviceId id, const KernelParams& params,
                           std::int64_t stage2_max_n) {
  SearchEngine engine(id);
  SearchOptions opt;
  opt.stage2_max_n = stage2_max_n;
  return engine.profile_candidate(params, opt);
}

std::string TunedDatabase::key(simcl::DeviceId id, Precision prec,
                               const std::optional<ShapeClass>& shape) {
  std::string k = simcl::to_string(id) + "/" + to_string(prec);
  if (shape) k += "@" + to_string(*shape);
  return k;
}

TunedDatabase::TunedDatabase(TunedDatabase&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  results_ = std::move(other.results_);
}

TunedDatabase& TunedDatabase::operator=(TunedDatabase&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    results_ = std::move(other.results_);
  }
  return *this;
}

std::size_t TunedDatabase::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

std::optional<TunedKernel> TunedDatabase::find(
    simcl::DeviceId id, Precision prec,
    const std::optional<ShapeClass>& shape) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(key(id, prec, shape));
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

void TunedDatabase::put(simcl::DeviceId id, Precision prec,
                        TunedKernel result) {
  put(id, prec, std::nullopt, std::move(result));
}

void TunedDatabase::put(simcl::DeviceId id, Precision prec,
                        const std::optional<ShapeClass>& shape,
                        TunedKernel result) {
  std::lock_guard<std::mutex> lock(mu_);
  results_[key(id, prec, shape)] = std::move(result);
}

const TunedKernel& TunedDatabase::get_or_tune(simcl::DeviceId id,
                                              Precision prec,
                                              const SearchOptions& opt) {
  return get_or_tune(id, prec, opt.shape, [&]() {
    SearchEngine engine(id);
    return engine.tune(prec, opt);
  });
}

const TunedKernel& TunedDatabase::get_or_tune(
    simcl::DeviceId id, Precision prec,
    const std::optional<ShapeClass>& shape,
    const std::function<TunedKernel()>& tune_fn) {
  const std::string k = key(id, prec, shape);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = results_.find(k);
    if (it != results_.end()) return it->second;
    if (!tuning_.contains(k)) break;
    // Another thread is tuning this key; wait for it instead of running a
    // duplicate multi-second search.
    cv_.wait(lock);
  }
  tuning_.insert(k);
  lock.unlock();
  TunedKernel tuned;
  try {
    tuned = tune_fn();
  } catch (...) {
    lock.lock();
    tuning_.erase(k);
    cv_.notify_all();
    throw;
  }
  lock.lock();
  auto it = results_.emplace(k, std::move(tuned)).first;
  tuning_.erase(k);
  cv_.notify_all();
  return it->second;
}

std::string TunedDatabase::save_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json root = Json::object();
  for (const auto& [k, t] : results_) {
    Json entry = Json::object();
    entry["params"] = t.params.to_json();
    entry["stage1_gflops"] = t.stage1_gflops;
    entry["best_gflops"] = t.best_gflops;
    entry["best_n"] = t.best_n;
    Json curve = Json::array();
    for (const auto& [n, g] : t.curve) {
      Json pt = Json::array();
      pt.push_back(n);
      pt.push_back(g);
      curve.push_back(std::move(pt));
    }
    entry["curve"] = std::move(curve);
    if (t.shape) {
      // Precision is already carried by the params; store the rest of the
      // class so old readers (which ignore unknown fields) keep working.
      Json sc = Json::object();
      sc["type"] = std::string(to_string(t.shape->type));
      sc["Mc"] = t.shape->Mc;
      sc["Nc"] = t.shape->Nc;
      sc["Kc"] = t.shape->Kc;
      entry["shape_class"] = std::move(sc);
    }
    root[k] = std::move(entry);
  }
  return root.dump(2);
}

TunedDatabase TunedDatabase::load_json(const std::string& text) {
  TunedDatabase db;
  const Json root = Json::parse(text);
  for (const auto& [k, entry] : root.items()) {
    TunedKernel t;
    t.params = KernelParams::from_json(entry.at("params"));
    t.stage1_gflops = entry.at("stage1_gflops").as_number();
    t.best_gflops = entry.at("best_gflops").as_number();
    t.best_n = entry.at("best_n").as_int();
    const Json& curve = entry.at("curve");
    for (std::size_t i = 0; i < curve.size(); ++i) {
      t.curve.emplace_back(curve.at(i).at(std::size_t{0}).as_int(),
                           curve.at(i).at(std::size_t{1}).as_number());
    }
    if (entry.contains("shape_class")) {
      // Databases written before shape-class keys existed simply lack this
      // field; their rows load as class-agnostic results.
      const Json& sc = entry.at("shape_class");
      ShapeClass s;
      s.prec = t.params.prec;
      s.type = gemm_type_from_string(sc.at("type").as_string());
      s.Mc = sc.at("Mc").as_int();
      s.Nc = sc.at("Nc").as_int();
      s.Kc = sc.at("Kc").as_int();
      t.shape = s;
    }
    db.results_[k] = std::move(t);
  }
  return db;
}

void TunedDatabase::save_file(const std::string& path) const {
  // Crash-safe: write the full document to a sibling temp file, then
  // rename it over the destination, so a reader (or a crash mid-write)
  // never observes a truncated database.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    check(f.good(), "save_file: cannot open " + tmp);
    f << save_json();
    f.flush();
    check(f.good(), "save_file: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("save_file: cannot rename " + tmp + " -> " + path);
  }
}

TunedDatabase TunedDatabase::load_file(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "load_file: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  try {
    return load_json(ss.str());
  } catch (const Error& e) {
    fail("load_file: corrupt tuning database '" + path + "': " + e.what());
  }
}

TunedDatabase TunedDatabase::paper_seeded() {
  TunedDatabase db;
  for (simcl::DeviceId id : simcl::all_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto entry = codegen::table2_entry(id, prec);
      db.put(id, prec, profile_kernel(id, entry.params));
    }
  }
  return db;
}

}  // namespace gemmtune::tuner
