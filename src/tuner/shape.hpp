// Input-aware shapes for the tuner (IAAT-style, ROADMAP item 1).
//
// A ShapeClass is the tile-quantized (precision, type, M, N, K) key that the
// serving layer batches on; moving it into the tuner lets a TunedDatabase
// key results per shape class and lets a search optimize the full delivered
// cost of one class — pack/copy overhead plus kernel time, or the guarded
// copy-free direct kernel when that wins — instead of the size-agnostic
// square-sweep peak.
//
// shape_cost() is the single source of truth for "what does running kernel
// params p on problem (M, N, K) cost": GemmEngine::estimate and the
// shape-aware search strategies both price candidates through it, so the
// kernel a shape-class tune selects is the kernel the engine's dispatch
// will actually prefer.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "codegen/params.hpp"
#include "layout/gemm_type.hpp"
#include "layout/matrix.hpp"
#include "perfmodel/model.hpp"

namespace gemmtune::tuner {

/// Batching/tuning key: problems of one shape class share a kernel.
struct ShapeClass {
  codegen::Precision prec = codegen::Precision::DP;
  GemmType type = GemmType::NN;
  index_t Mc = 0, Nc = 0, Kc = 0;  ///< extents rounded up to multiples of 16

  static index_t quantize(index_t n) {
    return n <= 16 ? 16 : (n + 15) / 16 * 16;
  }
  /// Classifies any request-like object carrying prec/type/M/N/K.
  template <typename Request>
  static ShapeClass of(const Request& r) {
    return {r.prec, r.type, quantize(r.M), quantize(r.N), quantize(r.K)};
  }

  friend bool operator<(const ShapeClass& a, const ShapeClass& b) {
    return std::tuple(static_cast<int>(a.prec), static_cast<int>(a.type),
                      a.Mc, a.Nc, a.Kc) <
           std::tuple(static_cast<int>(b.prec), static_cast<int>(b.type),
                      b.Mc, b.Nc, b.Kc);
  }
  friend bool operator==(const ShapeClass& a, const ShapeClass& b) {
    return !(a < b) && !(b < a);
  }
};

/// Stable display/report key for a shape class, e.g. "SGEMM.NN.64x64x64".
inline std::string to_string(const ShapeClass& c) {
  return std::string(to_string(c.prec)) + "." + to_string(c.type) + "." +
         std::to_string(c.Mc) + "x" + std::to_string(c.Nc) + "x" +
         std::to_string(c.Kc);
}

/// FNV-1a hash of the class fields; used to pick the admission shard, so
/// it must depend only on the class (never on arrival order or pointers).
inline std::uint64_t shape_class_hash(const ShapeClass& c) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(c.prec));
  mix(static_cast<std::uint64_t>(c.type));
  mix(static_cast<std::uint64_t>(c.Mc));
  mix(static_cast<std::uint64_t>(c.Nc));
  mix(static_cast<std::uint64_t>(c.Kc));
  return h;
}

/// Extra model cost of the guarded (non-divisible fringe) direct kernel on
/// top of DeviceCalib::direct_penalty.
inline constexpr double kDirectGuardPenalty = 1.08;

/// The tuned parameters adapted for in-place operands (vw = 1, row-major-
/// equivalent strided access for the model). Non-divisible problems need
/// the guarded variant, which exists for the BA algorithm only — and a
/// bounds-checked small kernel has no use for software pipelining anyway.
codegen::KernelParams direct_variant(const codegen::KernelParams& p);

/// Delivered cost of running kernel `p` on one (M, N, K) problem.
struct ShapeCost {
  bool ok = false;       ///< some path (packed or direct) is usable
  bool pack_ok = false;  ///< the packed path specifically is usable
  std::string reason;    ///< model rejection reason when !pack_ok
  double seconds = 0;        ///< total of the chosen path
  double copy_seconds = 0;   ///< pack A/B/C + unpack C (0 on the direct path)
  double kernel_seconds = 0;
  double gflops = 0;
  bool used_direct = false;  ///< the copy-free direct kernel won
};

/// Prices problem (M, N, K) under kernel `p`: the packed path (four padded
/// O(N^2) copies plus the tuned kernel on padded extents) against the
/// guarded direct path, returning whichever is cheaper. Pure model
/// arithmetic — deterministic and safe to call from any thread.
ShapeCost shape_cost(const perfmodel::PerfModel& model,
                     const codegen::KernelParams& p, index_t M, index_t N,
                     index_t K, bool direct_enabled = true);

}  // namespace gemmtune::tuner
