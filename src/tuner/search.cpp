#include "tuner/search.hpp"

#include <algorithm>
#include <optional>

#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/intmath.hpp"
#include "common/thread_pool.hpp"
#include "trace/trace.hpp"

namespace gemmtune::tuner {

using codegen::KernelParams;
using codegen::Precision;

SearchEngine::SearchEngine(simcl::DeviceId id) : id_(id), model_(id) {}

std::vector<std::pair<std::int64_t, double>> SearchEngine::sweep(
    const KernelParams& p, std::int64_t max_n) const {
  std::vector<std::pair<std::int64_t, double>> curve;
  const std::int64_t lcm = lcm3(p.Mwg, p.Nwg, p.Kwg);
  for (std::int64_t n = lcm; n <= max_n; n += lcm) {
    const auto e = model_.kernel_estimate(p, n, n, n);
    if (!e.ok) break;
    curve.emplace_back(n, e.gflops);
  }
  return curve;
}

std::vector<KernelParams> SearchEngine::candidate_space(
    Precision prec, const SearchOptions& opt, EnumStats* stats) const {
  // Everything that shapes the space (thread counts never do — the list
  // is bit-identical for any of them). A server tuning dozens of shape
  // classes hits the same key every time.
  const std::string key =
      std::string(to_string(prec)) + "|" +
      std::to_string(opt.enumeration.max_candidates) + "|" +
      std::to_string(opt.enumeration.seed) + "|" +
      (opt.enumeration.include_row_major ? "rm" : "cm") + "|" +
      (opt.seed_with_table2 ? "t2" : "-") + "|" +
      (opt.restrict_algo ? to_string(*opt.restrict_algo) : "*") + "|" +
      (opt.restrict_local ? (*opt.restrict_local ? "L" : "l") : "*");
  {
    std::lock_guard<std::mutex> lock(space_mu_);
    const auto it = space_cache_.find(key);
    if (it != space_cache_.end()) {
      if (stats) *stats = it->second.second;
      return it->second.first;
    }
  }
  EnumOptions eopt = opt.enumeration;
  if (eopt.threads == 0) eopt.threads = opt.threads;
  EnumStats est;
  std::vector<KernelParams> candidates;
  {
    trace::Span span("tuner.enumerate");
    candidates = enumerate_candidates(id_, prec, eopt, &est);
  }
  if (opt.seed_with_table2) {
    candidates.push_back(codegen::table2_entry(id_, prec).params);
  }
  if (opt.restrict_algo || opt.restrict_local) {
    std::erase_if(candidates, [&](const KernelParams& p) {
      if (opt.restrict_algo && p.algo != *opt.restrict_algo) return true;
      if (opt.restrict_local &&
          (p.share_a || p.share_b) != *opt.restrict_local)
        return true;
      return false;
    });
  }
  if (stats) *stats = est;
  std::lock_guard<std::mutex> lock(space_mu_);
  space_cache_.emplace(key, std::make_pair(candidates, est));
  return candidates;
}

double SearchEngine::measure_candidate(const KernelParams& p,
                                       const SearchOptions& opt) const {
  if (opt.shape) {
    const ShapeClass& s = *opt.shape;
    const ShapeCost c = shape_cost(model_, p, s.Mc, s.Nc, s.Kc);
    return c.ok ? c.gflops : 0;
  }
  const std::int64_t n1 = model_.stage1_size(p);
  const auto e = model_.kernel_estimate(p, n1, n1, n1);
  return e.ok ? e.gflops : 0;
}

TunedKernel SearchEngine::profile_candidate(const KernelParams& p,
                                            const SearchOptions& opt) const {
  TunedKernel t;
  t.params = p;
  if (opt.shape) {
    const ShapeClass& s = *opt.shape;
    const ShapeCost c = shape_cost(model_, p, s.Mc, s.Nc, s.Kc);
    check(c.ok, "profile_candidate: kernel unusable for shape class " +
                    to_string(s));
    t.stage1_gflops = c.gflops;
    t.best_gflops = c.gflops;
    t.best_n = s.Nc;
    t.curve = {{s.Nc, c.gflops}};
    t.shape = s;
    return t;
  }
  const std::int64_t n1 = model_.stage1_size(p);
  const auto e1 = model_.kernel_estimate(p, n1, n1, n1);
  check(e1.ok, "profile_kernel: kernel rejected: " + e1.reason);
  t.stage1_gflops = e1.gflops;
  t.curve = sweep(p, opt.stage2_max_n);
  for (const auto& [n, g] : t.curve) {
    if (g > t.best_gflops) {
      t.best_gflops = g;
      t.best_n = n;
    }
  }
  return t;
}

namespace {

struct Scored {
  double gflops;
  std::size_t index;
};

/// Stage-2 measurement of one finalist.
struct SweepResult {
  std::vector<std::pair<std::int64_t, double>> curve;
  double peak = 0;
  std::int64_t peak_n = 0;
};

}  // namespace

TunedKernel SearchEngine::tune(Precision prec, const SearchOptions& opt,
                               SearchStats* stats) const {
  trace::Span tune_span("tuner.tune");
  SearchStats st;
  const std::vector<KernelParams> candidates =
      candidate_space(prec, opt, &st.enumeration);
  check(!candidates.empty(), "tune: no valid candidates for device");

  // An explicit per-call thread count gets its own pool; otherwise share
  // the process-wide one.
  std::optional<ThreadPool> local_pool;
  if (opt.threads > 0) local_pool.emplace(opt.threads);
  ThreadPool& pool = local_pool ? *local_pool : ThreadPool::global();
  const auto workers = static_cast<std::size_t>(pool.size());

  // Stage 1: single measurement of every candidate — the stage-1 square
  // size, or the shape class's delivered cost when opt.shape is set —
  // fanned out over the pool. Chunks are contiguous and merged in chunk
  // order, so the scored list is in candidate-index order for any thread
  // count.
  std::vector<Scored> scored;
  std::size_t keep = 0;
  {
    trace::Span stage1_span("tuner.stage1");
    std::vector<std::vector<Scored>> part_scored(workers);
    std::vector<std::int64_t> part_evaluated(workers, 0),
        part_failed(workers, 0);
    pool.parallel_for(
        static_cast<std::int64_t>(candidates.size()),
        [&](std::int64_t begin, std::int64_t end, int worker) {
          auto& scored = part_scored[static_cast<std::size_t>(worker)];
          for (std::int64_t i = begin; i < end; ++i) {
            const KernelParams& p = candidates[static_cast<std::size_t>(i)];
            const double g = measure_candidate(p, opt);
            ++part_evaluated[static_cast<std::size_t>(worker)];
            if (g <= 0) {
              ++part_failed[static_cast<std::size_t>(worker)];
              continue;
            }
            scored.push_back({g, static_cast<std::size_t>(i)});
          }
        });
    for (std::size_t w = 0; w < workers; ++w) {
      st.stage1_evaluated += part_evaluated[w];
      st.stage1_failed += part_failed[w];
      scored.insert(scored.end(), part_scored[w].begin(),
                    part_scored[w].end());
    }
    check(!scored.empty(), "tune: every candidate failed stage 1");
    keep = std::min<std::size_t>(static_cast<std::size_t>(opt.stage1_keep),
                                 scored.size());
    // Tie-break equal scores by candidate index: partial_sort is not
    // stable, and the finalist order must not depend on how chunks
    // interleaved.
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(keep),
                      scored.end(), [](const Scored& a, const Scored& b) {
                        if (a.gflops != b.gflops) return a.gflops > b.gflops;
                        return a.index < b.index;
                      });
    scored.resize(keep);
  }

  TunedKernel best;
  if (opt.shape) {
    // Input-aware search: the measurement already IS the objective (the
    // delivered cost of this shape class), so there is no stage-2 size
    // sweep — the top-ranked candidate is the winner.
    const Scored& top = scored.front();
    best = profile_candidate(candidates[top.index], opt);
  } else {
    // Stage 2: sweep the finalists over sizes <= stage2_max_n in parallel,
    // then reduce in stage-1 rank order; pick the kernel with the highest
    // performance at any size (ties go to the better stage-1 rank).
    trace::Span stage2_span("tuner.stage2");
    std::vector<SweepResult> sweeps(keep);
    pool.parallel_for(static_cast<std::int64_t>(keep),
                      [&](std::int64_t begin, std::int64_t end, int) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          SweepResult& r =
                              sweeps[static_cast<std::size_t>(i)];
                          r.curve = sweep(
                              candidates[scored[static_cast<std::size_t>(i)]
                                             .index],
                              opt.stage2_max_n);
                          for (const auto& [n, g] : r.curve) {
                            if (g > r.peak) {
                              r.peak = g;
                              r.peak_n = n;
                            }
                          }
                        }
                      });
    for (std::size_t i = 0; i < keep; ++i) {
      const Scored& s = scored[i];
      SweepResult& r = sweeps[i];
      st.stage2_points += static_cast<std::int64_t>(r.curve.size());
      if (r.curve.empty()) {
        ++st.stage2_empty;
        st.stage2_failed.push_back(candidates[s.index].summary());
      }
      if (r.peak > best.best_gflops) {
        best.params = candidates[s.index];
        best.stage1_gflops = s.gflops;
        best.best_gflops = r.peak;
        best.best_n = r.peak_n;
        best.curve = std::move(r.curve);
      }
    }
    if (best.best_gflops <= 0) {
      // Every finalist's sweep came back empty (e.g. stage2_max_n below
      // the smallest blocking LCM). Fall back to the stage-1 measurement
      // of the top-ranked finalist rather than failing the whole search.
      st.used_stage1_fallback = true;
      const Scored& top = scored.front();
      best.params = candidates[top.index];
      best.stage1_gflops = top.gflops;
      best.best_gflops = top.gflops;
      best.best_n = model_.stage1_size(best.params);
      best.curve = {{best.best_n, top.gflops}};
    }
  }
  if (trace::enabled()) {
    trace::counter_add("tuner.candidates", candidates.size());
    trace::counter_add("tuner.stage1_evaluated",
                       static_cast<std::uint64_t>(st.stage1_evaluated));
    trace::counter_add("tuner.stage1_failed",
                       static_cast<std::uint64_t>(st.stage1_failed));
    trace::counter_add("tuner.stage2_points",
                       static_cast<std::uint64_t>(st.stage2_points));
    trace::counter_add("tuner.stage2_empty",
                       static_cast<std::uint64_t>(st.stage2_empty));
    trace::counter_add("tuner.stage1_fallbacks",
                       st.used_stage1_fallback ? 1 : 0);
    trace::gauge_set("tuner.best_gflops", best.best_gflops);
  }
  if (stats) *stats = std::move(st);
  check(best.best_gflops > 0,
        "tune: neither stage 2 nor the stage-1 fallback produced a positive "
        "measurement");
  return best;
}

}  // namespace gemmtune::tuner
