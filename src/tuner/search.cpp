#include "tuner/search.hpp"

#include <algorithm>

#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/intmath.hpp"

namespace gemmtune::tuner {

using codegen::KernelParams;
using codegen::Precision;

SearchEngine::SearchEngine(simcl::DeviceId id) : id_(id), model_(id) {}

std::vector<std::pair<std::int64_t, double>> SearchEngine::sweep(
    const KernelParams& p, std::int64_t max_n) const {
  std::vector<std::pair<std::int64_t, double>> curve;
  const std::int64_t lcm = lcm3(p.Mwg, p.Nwg, p.Kwg);
  for (std::int64_t n = lcm; n <= max_n; n += lcm) {
    const auto e = model_.kernel_estimate(p, n, n, n);
    if (!e.ok) break;
    curve.emplace_back(n, e.gflops);
  }
  return curve;
}

TunedKernel SearchEngine::tune(Precision prec, const SearchOptions& opt,
                               SearchStats* stats) const {
  SearchStats st;
  std::vector<KernelParams> candidates =
      enumerate_candidates(id_, prec, opt.enumeration, &st.enumeration);
  if (opt.seed_with_table2) {
    candidates.push_back(codegen::table2_entry(id_, prec).params);
  }
  if (opt.restrict_algo || opt.restrict_local) {
    std::erase_if(candidates, [&](const KernelParams& p) {
      if (opt.restrict_algo && p.algo != *opt.restrict_algo) return true;
      if (opt.restrict_local &&
          (p.share_a || p.share_b) != *opt.restrict_local)
        return true;
      return false;
    });
  }
  check(!candidates.empty(), "tune: no valid candidates for device");

  // Stage 1: single-size measurement of every candidate.
  struct Scored {
    double gflops;
    std::size_t index;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const KernelParams& p = candidates[i];
    const std::int64_t n1 = model_.stage1_size(p);
    const auto e = model_.kernel_estimate(p, n1, n1, n1);
    ++st.stage1_evaluated;
    if (!e.ok) {
      ++st.stage1_failed;
      continue;
    }
    scored.push_back({e.gflops, i});
  }
  check(!scored.empty(), "tune: every candidate failed stage 1");
  const std::size_t keep =
      std::min<std::size_t>(static_cast<std::size_t>(opt.stage1_keep),
                            scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      return a.gflops > b.gflops;
                    });
  scored.resize(keep);

  // Stage 2: sweep the finalists over sizes <= stage2_max_n; pick the
  // kernel with the highest performance at any size.
  TunedKernel best;
  for (const Scored& s : scored) {
    const KernelParams& p = candidates[s.index];
    const auto curve = sweep(p, opt.stage2_max_n);
    st.stage2_points += static_cast<std::int64_t>(curve.size());
    double peak = 0;
    std::int64_t peak_n = 0;
    for (const auto& [n, g] : curve) {
      if (g > peak) {
        peak = g;
        peak_n = n;
      }
    }
    if (peak > best.best_gflops) {
      best.params = p;
      best.stage1_gflops = s.gflops;
      best.best_gflops = peak;
      best.best_n = peak_n;
      best.curve = curve;
    }
  }
  if (stats) *stats = st;
  check(best.best_gflops > 0, "tune: stage 2 produced no measurement");
  return best;
}

}  // namespace gemmtune::tuner
