// Tuning-results database: caches the best kernel per (device, precision),
// with JSON persistence so a long search runs once (the paper's search
// "should run more than five hours" per GEMM type on real hardware).
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "tuner/search.hpp"

namespace gemmtune::tuner {

/// In-memory store of tuning results keyed by (device, precision),
/// serializable to a JSON document.
///
/// Thread safety: all member functions may be called concurrently on one
/// instance. Concurrent get_or_tune calls for the *same* key are deduped:
/// one caller runs the search while the others block until the result is
/// stored; different keys tune concurrently. References returned by
/// get_or_tune stay valid for the database's lifetime (entries are never
/// removed).
class TunedDatabase {
 public:
  TunedDatabase() = default;
  TunedDatabase(TunedDatabase&& other) noexcept;
  TunedDatabase& operator=(TunedDatabase&& other) noexcept;

  /// Looks up a stored result. A shape class addresses the per-class row;
  /// nullopt addresses the size-agnostic one.
  std::optional<TunedKernel> find(
      simcl::DeviceId id, codegen::Precision prec,
      const std::optional<ShapeClass>& shape = std::nullopt) const;

  /// Stores (or replaces) a result under the size-agnostic key.
  void put(simcl::DeviceId id, codegen::Precision prec, TunedKernel result);

  /// Stores (or replaces) a result under a shape-class key (nullopt is the
  /// size-agnostic key).
  void put(simcl::DeviceId id, codegen::Precision prec,
           const std::optional<ShapeClass>& shape, TunedKernel result);

  /// Returns the stored result, running `engine.tune` on a miss. The row
  /// is keyed per shape class when opt.shape is set.
  const TunedKernel& get_or_tune(simcl::DeviceId id,
                                 codegen::Precision prec,
                                 const SearchOptions& opt = {});

  /// Generic dedup-and-cache: returns the stored result for the key,
  /// running `tune_fn` on a miss. Concurrent callers for the same key
  /// block on the one in-flight computation. This is how strategy-driven
  /// tunes (which live above this library) share the cache.
  const TunedKernel& get_or_tune(
      simcl::DeviceId id, codegen::Precision prec,
      const std::optional<ShapeClass>& shape,
      const std::function<TunedKernel()>& tune_fn);

  std::size_t size() const;

  /// JSON round trip.
  std::string save_json() const;
  static TunedDatabase load_json(const std::string& text);

  /// File round trip (throws on I/O failure).
  void save_file(const std::string& path) const;
  static TunedDatabase load_file(const std::string& path);

  /// A database pre-seeded with the paper's Table II kernels, each profiled
  /// through the performance model (no search). This is what the benchmark
  /// harnesses use by default so every table/figure regenerates in seconds.
  static TunedDatabase paper_seeded();

 private:
  static std::string key(simcl::DeviceId id, codegen::Precision prec,
                         const std::optional<ShapeClass>& shape);

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< signals a finished tune
  std::set<std::string> tuning_;      ///< keys with a tune in flight
  std::map<std::string, TunedKernel> results_;
};

/// Profiles a fixed parameter set the same way tune() profiles its winner
/// (stage-1 score plus full stage-2 sweep).
TunedKernel profile_kernel(simcl::DeviceId id,
                           const codegen::KernelParams& params,
                           std::int64_t stage2_max_n = 8192);

}  // namespace gemmtune::tuner
