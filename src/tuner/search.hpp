// The heuristic search engine (paper Section III-F).
//
// The procedure for selecting the best kernel follows the paper:
//  1. Measure every candidate at one problem size: the largest multiple of
//     LCM(Mwg, Nwg, Kwg) not exceeding 4096 on GPUs / 1536 on CPUs.
//  2. Re-measure the fastest `stage1_keep` (default 50) kernels over all
//     sizes N in multiples of their LCM with N <= 8192.
//  3. Select the kernel with the highest observed performance.
//
// "Measurement" is the analytic performance model; on real hardware the
// same driver code would time real launches (the paper reports >5 hours
// per GEMM type — under the model the search takes seconds).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codegen/params.hpp"
#include "perfmodel/model.hpp"
#include "simcl/device_registry.hpp"
#include "tuner/candidates.hpp"
#include "tuner/shape.hpp"

namespace gemmtune::tuner {

/// Search controls.
struct SearchOptions {
  EnumOptions enumeration;
  int stage1_keep = 50;           ///< paper: the fastest 50 kernels
  std::int64_t stage2_max_n = 8192;  ///< paper: N <= 8192
  bool seed_with_table2 = true;   ///< include the paper's kernels as seeds

  /// Worker threads for stage-1 scoring and stage-2 sweeps. 0 uses the
  /// process-wide configuration (--threads / GEMMTUNE_THREADS / hardware).
  /// The tuned result is bit-identical for every thread count.
  int threads = 0;

  /// Constrained searches for the ablation studies (Fig. 8 and the
  /// Section IV-A local-memory experiments): restrict the candidate set to
  /// one algorithm and/or to kernels that do (true) or do not (false) use
  /// local memory. Seeds that violate a restriction are dropped.
  std::optional<codegen::Algorithm> restrict_algo;
  std::optional<bool> restrict_local;

  /// Input-aware search: when set, candidates are scored by the delivered
  /// cost of this shape class (shape_cost: pack overhead + kernel, or the
  /// guarded direct kernel when it wins) at (Mc, Nc, Kc) instead of the
  /// size-agnostic stage-1/stage-2 square sweep. The selected kernel
  /// carries the class so a TunedDatabase can key it per shape.
  std::optional<ShapeClass> shape;
};

/// Search diagnostics.
struct SearchStats {
  EnumStats enumeration;
  std::int64_t stage1_evaluated = 0;
  std::int64_t stage1_failed = 0;  ///< model rejected at run time
  std::int64_t stage2_points = 0;
  std::int64_t stage2_empty = 0;  ///< finalists whose sweep had no points
  /// Summaries of the finalists whose stage-2 sweep came back empty, in
  /// stage-1 rank order.
  std::vector<std::string> stage2_failed;
  /// True when every finalist's sweep was empty and the result fell back
  /// to the best stage-1 measurement.
  bool used_stage1_fallback = false;
};

/// The selected kernel and its measured profile.
struct TunedKernel {
  codegen::KernelParams params;
  double stage1_gflops = 0;  ///< performance at the stage-1 size
  double best_gflops = 0;    ///< maximum over the stage-2 sweep
  std::int64_t best_n = 0;   ///< size achieving best_gflops
  /// Stage-2 curve of the winning kernel: (N, GFlop/s).
  std::vector<std::pair<std::int64_t, double>> curve;
  /// The shape class this kernel was tuned for; empty for the classic
  /// size-agnostic search.
  std::optional<ShapeClass> shape;
};

/// Search engine bound to one device.
///
/// tune() fans stage-1 scoring and stage-2 sweeps out over a thread pool
/// (SearchOptions::threads). Candidates are statically chunked, per-thread
/// statistics are merged in chunk order, and ties are broken by (GFlop/s,
/// then candidate index), so the returned TunedKernel — params, curve and
/// all measured numbers — is bit-identical for every thread count.
class SearchEngine {
 public:
  explicit SearchEngine(simcl::DeviceId id);

  /// Runs the full two-stage search.
  TunedKernel tune(codegen::Precision prec, const SearchOptions& opt = {},
                   SearchStats* stats = nullptr) const;

  /// Stage-2 sweep for one kernel: performance at every multiple of the
  /// blocking LCM up to max_n.
  std::vector<std::pair<std::int64_t, double>> sweep(
      const codegen::KernelParams& p, std::int64_t max_n) const;

  /// The candidate space the search runs over: enumeration, the Table II
  /// seed (appended last when seed_with_table2), and the restriction
  /// filters. Every strategy — exhaustive or guided — draws from exactly
  /// this list, in exactly this order. The space is memoized per option
  /// set (opt.shape does not change it), so a server tuning many shape
  /// classes pays the cross-product walk once per device.
  std::vector<codegen::KernelParams> candidate_space(
      codegen::Precision prec, const SearchOptions& opt,
      EnumStats* stats = nullptr) const;

  /// One "measurement" of a candidate: the stage-1 square score, or — when
  /// opt.shape is set — the delivered GFlop/s of that shape class. Returns
  /// <= 0 when the model rejects the kernel. Pure and deterministic.
  double measure_candidate(const codegen::KernelParams& p,
                           const SearchOptions& opt) const;

  /// Full profile of one winning candidate, matching what tune() records:
  /// stage-1 score plus stage-2 sweep (classic), or the single shape-class
  /// point (opt.shape set; throws if the model rejects the kernel there).
  TunedKernel profile_candidate(const codegen::KernelParams& p,
                                const SearchOptions& opt) const;

  simcl::DeviceId device_id() const { return id_; }
  const perfmodel::PerfModel& model() const { return model_; }

 private:
  simcl::DeviceId id_;
  perfmodel::PerfModel model_;
  /// candidate_space memo: space key -> (candidates, enum stats). Guarded
  /// by space_mu_; safe to share one engine across threads.
  mutable std::mutex space_mu_;
  mutable std::map<std::string,
                   std::pair<std::vector<codegen::KernelParams>, EnumStats>>
      space_cache_;
};

}  // namespace gemmtune::tuner
