// Seeded simulated annealing over the parameter grid (CLTune-style).
//
// The budget is split across independent restart chains. Each chain owns a
// deterministic RNG stream derived from (seed, chain index), walks the
// 14-axis grid with single-axis ±1 neighbor moves (random jump when a
// neighborhood is exhausted), and accepts downhill moves with Metropolis
// probability under a geometric temperature schedule. Chain 0 warm-starts
// at the paper's Table II kernel when the search is seeded with it; the
// remaining chains warm-start at the analytic model's top-ranked
// candidates (the ranking pass is free, like model_topk's pre-selection —
// only measurements consume budget), so with R restarts the measured set
// always contains the model's top R-1 kernels plus the Table II seed.
//
// Chains run in parallel but are fully independent and merged in chain
// order, so the result is bit-identical for any --threads.
#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tuner/strategy/detail.hpp"

namespace gemmtune::tuner::strategy::detail {

namespace {

constexpr double kTempStart = 0.10;  ///< initial relative-delta temperature
constexpr double kTempEnd = 0.005;   ///< final temperature
constexpr std::uint64_t kChainSalt = 0xA11EA7ED;

struct ChainOut {
  std::vector<Measured> fresh;  ///< first measurements, in chain order
  std::int64_t proposals = 0;
  std::int64_t invalid = 0;
};

class AnnealStrategy final : public SearchStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::Anneal; }

  TunedKernel run(const SearchEngine& engine, codegen::Precision prec,
                  const SearchOptions& opt, const StrategySpec& spec,
                  StrategyStats* stats) const override {
    StrategyStats st;
    const std::int64_t budget = spec.budget > 0 ? spec.budget : 256;
    const std::vector<codegen::KernelParams> candidates =
        engine.candidate_space(prec, opt, &st.search.enumeration);
    check(!candidates.empty(), "anneal: no valid candidates for device");
    st.space = static_cast<std::int64_t>(candidates.size());

    // Index of every in-space key, for deterministic tie-breaks.
    std::unordered_map<std::string, std::size_t> space_index;
    space_index.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      space_index.emplace(candidates[i].key(), i);

    const Grid grid(engine, opt);
    const int restarts = std::max(
        1, std::min<int>(spec.restarts, static_cast<int>(budget)));

    // Rank the space analytically once and warm-start chains 1..R-1 at the
    // model's top candidates. The ranking pass is pure arithmetic (free on
    // real hardware relative to a measurement); the elite starts are
    // measured like any other visit, so the budget accounting is unchanged
    // — this only replaces uniform random starting points with the model's
    // best guesses.
    std::vector<std::size_t> elite;  // candidate indices, model-rank order
    if (restarts > 1) {
      std::vector<Measured> ranked;
      ranked.reserve(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double g = engine.measure_candidate(candidates[i], opt);
        if (g > 0) ranked.push_back({candidates[i], g, i, candidates[i].key()});
      }
      const std::size_t k = std::min<std::size_t>(
          ranked.size(), static_cast<std::size_t>(restarts - 1));
      std::partial_sort(ranked.begin(),
                        ranked.begin() + static_cast<std::ptrdiff_t>(k),
                        ranked.end(), better);
      elite.reserve(k);
      for (std::size_t i = 0; i < k; ++i) elite.push_back(ranked[i].index);
      st.model_ranked = st.space;
    }

    std::vector<ChainOut> chains(static_cast<std::size_t>(restarts));
    std::optional<ThreadPool> local_pool;
    if (opt.threads > 0) local_pool.emplace(opt.threads);
    ThreadPool& pool = local_pool ? *local_pool : ThreadPool::global();
    pool.parallel_for(
        restarts, [&](std::int64_t begin, std::int64_t end, int) {
          for (std::int64_t r = begin; r < end; ++r)
            run_chain(engine, opt, prec, spec, candidates, space_index, grid,
                      elite, budget, restarts, static_cast<int>(r),
                      chains[static_cast<std::size_t>(r)]);
        });

    // Merge in chain order; keep the first (lowest-chain) record of each
    // key so st.measured counts distinct kernels.
    std::vector<Measured> measured;
    std::unordered_map<std::string, bool> seen;
    for (const ChainOut& co : chains) {
      st.proposals += co.proposals;
      st.proposals_invalid += co.invalid;
      for (const Measured& m : co.fresh) {
        if (!seen.emplace(m.key, true).second) continue;
        measured.push_back(m);
      }
    }
    st.measured = static_cast<std::int64_t>(measured.size());
    st.search.stage1_evaluated = st.measured;
    TunedKernel t =
        select_winner(engine, opt, std::move(measured), &st.search);
    if (stats) *stats = std::move(st);
    return t;
  }

 private:
  static void run_chain(
      const SearchEngine& engine, const SearchOptions& opt,
      codegen::Precision prec, const StrategySpec& spec,
      const std::vector<codegen::KernelParams>& candidates,
      const std::unordered_map<std::string, std::size_t>& space_index,
      const Grid& grid, const std::vector<std::size_t>& elite,
      std::int64_t budget, int restarts, int chain, ChainOut& out) {
    // Distribute the budget: earlier chains absorb the remainder.
    const std::int64_t base = budget / restarts;
    std::int64_t chain_budget =
        base + (chain < static_cast<int>(budget % restarts) ? 1 : 0);
    if (chain_budget <= 0) return;

    Rng rng(mix_seed(spec.seed, kChainSalt + static_cast<std::uint64_t>(chain)));
    const auto random_start = [&]() -> Grid::Coords {
      // Encoding an enumerated candidate always succeeds (the space is a
      // subset of the grid), so this terminates on the first draw.
      for (;;) {
        const auto idx = rng.next_below(candidates.size());
        if (const auto c =
                grid.encode(candidates[static_cast<std::size_t>(idx)]))
          return *c;
      }
    };

    Grid::Coords cur{};
    std::optional<Grid::Coords> start;
    if (chain == 0 && opt.seed_with_table2) {
      // The Table II seed is appended last by candidate_space.
      start = grid.encode(candidates.back());
    } else if (chain >= 1 &&
               static_cast<std::size_t>(chain - 1) < elite.size()) {
      // Model-elite warm start: chain r begins at the model's rank-(r-1)
      // candidate, so the chain measures it before walking away.
      start = grid.encode(candidates[elite[static_cast<std::size_t>(chain - 1)]]);
    }
    cur = start ? *start : random_start();

    // Per-chain memo: re-visiting a kernel is free (the chain remembers
    // its measurement), only first measurements consume budget.
    std::map<std::string, double> memo;
    std::int64_t measured_count = 0;
    const auto measure = [&](const codegen::KernelParams& p) -> double {
      const std::string key = p.key();
      if (const auto it = memo.find(key); it != memo.end())
        return it->second;
      const double g = engine.measure_candidate(p, opt);
      memo.emplace(key, g);
      ++measured_count;
      if (g > 0) {
        const auto it = space_index.find(key);
        const std::size_t idx = it != space_index.end()
                                    ? it->second
                                    : static_cast<std::size_t>(-1);
        out.fresh.push_back({p, g, idx, key});
      }
      return g;
    };

    auto p_cur = grid.decode(cur, prec);
    check(p_cur.has_value(), "anneal: start point failed to decode");
    double g_cur = measure(*p_cur);

    // Propose/accept until the chain's measurement budget is spent. The
    // proposal cap bounds the walk when the budget exceeds the reachable
    // neighborhood.
    const std::int64_t max_proposals = 64 * chain_budget + 256;
    std::int64_t step = 0;
    while (measured_count < chain_budget &&
           out.proposals < max_proposals) {
      // Geometric cooling over the chain's measurement budget.
      const double frac =
          static_cast<double>(step) /
          static_cast<double>(std::max<std::int64_t>(1, chain_budget));
      const double temp =
          kTempStart * std::pow(kTempEnd / kTempStart, std::min(1.0, frac));
      // Single-axis ±1 move with reflection at the ends; after 16 failed
      // decodes, jump to a random in-space point instead.
      std::optional<codegen::KernelParams> p_next;
      Grid::Coords next = cur;
      for (int attempt = 0; attempt < 16 && !p_next; ++attempt) {
        next = cur;
        const int axis =
            static_cast<int>(rng.next_below(Grid::kAxes));
        const int size = grid.axis_size(axis);
        if (size < 2) continue;
        int v = next[static_cast<std::size_t>(axis)] +
                (rng.next_below(2) == 0 ? 1 : -1);
        if (v < 0) v = 1;
        if (v >= size) v = size - 2;
        next[static_cast<std::size_t>(axis)] = v;
        ++out.proposals;
        p_next = grid.decode(next, prec);
        if (!p_next) ++out.invalid;
      }
      if (!p_next) {
        next = random_start();
        ++out.proposals;
        p_next = grid.decode(next, prec);
        if (!p_next) {
          ++out.invalid;
          continue;
        }
      }
      const double g_next = measure(*p_next);
      ++step;
      if (g_next <= 0) continue;
      bool accept = g_next >= g_cur;
      if (!accept && g_cur > 0) {
        const double delta_rel = (g_next - g_cur) / g_cur;
        accept = rng.next_double() < std::exp(delta_rel / temp);
      }
      if (accept) {
        cur = next;
        g_cur = g_next;
      }
    }
  }
};

}  // namespace

std::unique_ptr<SearchStrategy> make_anneal() {
  return std::make_unique<AnnealStrategy>();
}

}  // namespace gemmtune::tuner::strategy::detail
