// Shared machinery of the guided strategies: the measured-candidate record
// with its deterministic ordering, the common finalist-sweep winner
// selection, and the parameter grid the stochastic strategies move on.
// Internal to gemmtune_strategy.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tuner/search.hpp"
#include "tuner/strategy/strategy.hpp"

namespace gemmtune::tuner::strategy::detail {

/// Per-implementation factories (one per translation unit); make_strategy
/// dispatches over these.
std::unique_ptr<SearchStrategy> make_exhaustive();
std::unique_ptr<SearchStrategy> make_model_topk();
std::unique_ptr<SearchStrategy> make_anneal();
std::unique_ptr<SearchStrategy> make_pso();

/// splitmix64-style stream split: derives an independent per-chain /
/// per-particle seed from the user seed, so parallel chains never share an
/// RNG stream and results cannot depend on scheduling.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One measured candidate. `index` is its position in the engine's
/// candidate space (SIZE_MAX for grid points the subsampled space does not
/// contain); `key` is the stable KernelParams::key() string. Ordering is
/// (GFlop/s desc, index asc, key asc) — fully deterministic.
struct Measured {
  codegen::KernelParams params;
  double gflops = 0;
  std::size_t index = static_cast<std::size_t>(-1);
  std::string key;
};

inline bool better(const Measured& a, const Measured& b) {
  if (a.gflops != b.gflops) return a.gflops > b.gflops;
  if (a.index != b.index) return a.index < b.index;
  return a.key < b.key;
}

/// Selects the winner from a strategy's measured set exactly the way
/// SearchEngine::tune selects from its stage-1 scores: sort, dedupe, sweep
/// the top stage1_keep finalists over sizes <= stage2_max_n, reduce in
/// rank order (strict >), stage-1 fallback when every sweep is empty. In
/// shape mode (opt.shape) the measurement already is the objective, so the
/// top-ranked candidate wins outright.
TunedKernel select_winner(const SearchEngine& engine,
                          const SearchOptions& opt,
                          std::vector<Measured> measured,
                          SearchStats* stats);

/// The 14-axis discretized parameter grid (the enumerator's value lists
/// plus its selector dimensions). decode() applies the enumerator's
/// structural rules, the search restrictions and codegen::validate, so
/// every decodable point is a point the exhaustive walk could visit.
class Grid {
 public:
  static constexpr int kAxes = 14;
  using Coords = std::array<int, kAxes>;

  Grid(const SearchEngine& engine, const SearchOptions& opt);

  int axis_size(int axis) const { return sizes_[static_cast<std::size_t>(axis)]; }

  /// Grid point -> kernel params; nullopt when structurally invalid,
  /// restricted away, or rejected by validate().
  std::optional<codegen::KernelParams> decode(const Coords& c,
                                              codegen::Precision prec) const;

  /// Kernel params -> grid point; nullopt when a value is off-axis.
  std::optional<Coords> encode(const codegen::KernelParams& p) const;

 private:
  GridAxes axes_;
  std::array<int, kAxes> sizes_{};
  simcl::DeviceSpec dev_;
  std::optional<codegen::Algorithm> restrict_algo_;
  std::optional<bool> restrict_local_;
};

}  // namespace gemmtune::tuner::strategy::detail
