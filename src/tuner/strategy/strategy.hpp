// Guided search strategies over the tuner's candidate space (ROADMAP
// item 1).
//
// The paper's exhaustive two-stage search measures every enumerated
// candidate; at serving scale every new device or shape class pays that
// full cold-start cost. This layer makes the search pluggable:
//
//   exhaustive  — the paper's two-stage procedure, unchanged (reference)
//   model_topk  — rank the FULL candidate space with the analytic
//                 performance model (tritonBLAS-style pre-selection),
//                 measure only the top-K sliver
//   anneal      — seeded simulated annealing over the parameter grid with
//                 deterministic neighbor moves and a restart schedule
//                 (CLTune-style)
//   pso         — particle swarm optimization with index tie-breaks
//                 (CLTune-style)
//
// Every strategy draws from SearchEngine::candidate_space, measures
// through SearchEngine::measure_candidate and selects its winner through
// one shared finalist sweep, so results are comparable — and every
// strategy is bit-reproducible at any --threads for a fixed seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "tuner/search.hpp"

namespace gemmtune::tuner::strategy {

enum class StrategyKind { Exhaustive, ModelTopK, Anneal, Pso };

inline const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::Exhaustive: return "exhaustive";
    case StrategyKind::ModelTopK: return "model_topk";
    case StrategyKind::Anneal: return "anneal";
    case StrategyKind::Pso: return "pso";
  }
  return "?";
}

/// Parsed `--strategy` spec: "name,budget=N,seed=S[,restarts=R|particles=P]".
struct StrategySpec {
  StrategyKind kind = StrategyKind::Exhaustive;
  /// Maximum number of distinct candidates a guided strategy may measure.
  /// 0 picks the strategy default (model_topk: 64, anneal/pso: 256);
  /// exhaustive always measures the whole space.
  std::int64_t budget = 0;
  std::uint64_t seed = 1;  ///< stochastic-strategy determinism
  int restarts = 8;        ///< anneal: independent restart chains
  int particles = 16;      ///< pso: swarm size
};

/// Parses a `--strategy` spec string. Unknown strategy names and unknown
/// keys throw gemmtune::Error naming the allowed set.
StrategySpec parse_strategy_spec(const std::string& text);

/// Diagnostics from one strategy run.
struct StrategyStats {
  StrategyKind kind = StrategyKind::Exhaustive;
  SearchStats search;               ///< finalist-sweep / exhaustive stats
  std::int64_t space = 0;           ///< candidate-space size
  std::int64_t measured = 0;        ///< distinct candidates measured
  std::int64_t model_ranked = 0;    ///< candidates ranked analytically only
  std::int64_t proposals = 0;       ///< stochastic moves proposed
  std::int64_t proposals_invalid = 0;  ///< moves that decoded off-space
  double fraction_measured = 0;     ///< measured / space
};

/// One search strategy. Implementations are stateless; all run state is
/// local to run(), so one instance may be used from any thread.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual StrategyKind kind() const = 0;
  /// Runs the search and returns the selected kernel, profiled the same
  /// way SearchEngine::tune profiles its winner.
  virtual TunedKernel run(const SearchEngine& engine,
                          codegen::Precision prec, const SearchOptions& opt,
                          const StrategySpec& spec,
                          StrategyStats* stats) const = 0;
};

std::unique_ptr<SearchStrategy> make_strategy(StrategyKind kind);

/// Convenience: make + run + fill fraction_measured.
TunedKernel run_strategy(const SearchEngine& engine, codegen::Precision prec,
                         const SearchOptions& opt, const StrategySpec& spec,
                         StrategyStats* stats = nullptr);

}  // namespace gemmtune::tuner::strategy
