#include "tuner/strategy/strategy.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "tuner/strategy/detail.hpp"

namespace gemmtune::tuner::strategy {

using codegen::KernelParams;
using codegen::Precision;

namespace {

std::int64_t parse_spec_int(const std::string& key,
                            const std::string& value) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(value, &used);
    check(used == value.size(),
          "--strategy: " + key + " expects an integer, got '" + value + "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail("--strategy: " + key + " expects an integer, got '" + value + "'");
  }
}

}  // namespace

StrategySpec parse_strategy_spec(const std::string& text) {
  static const std::vector<std::string> kNames = {"exhaustive", "model_topk",
                                                  "anneal", "pso"};
  std::string name = text;
  std::string rest;
  if (const auto comma = text.find(','); comma != std::string::npos) {
    name = text.substr(0, comma);
    rest = text.substr(comma + 1);
  }
  name = trim(name);
  StrategySpec spec;
  if (name == "exhaustive") {
    spec.kind = StrategyKind::Exhaustive;
  } else if (name == "model_topk") {
    spec.kind = StrategyKind::ModelTopK;
  } else if (name == "anneal") {
    spec.kind = StrategyKind::Anneal;
  } else if (name == "pso") {
    spec.kind = StrategyKind::Pso;
  } else {
    fail_unknown_value("--strategy", name, kNames);
  }
  std::vector<std::string> allowed = {"budget", "seed"};
  if (spec.kind == StrategyKind::Anneal) allowed.push_back("restarts");
  if (spec.kind == StrategyKind::Pso) allowed.push_back("particles");
  for (const auto& [key, value] : parse_keyval_spec(rest, "--strategy")) {
    if (key == "budget") {
      spec.budget = parse_spec_int(key, value);
      check(spec.budget > 0, "--strategy: budget must be positive");
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_spec_int(key, value));
    } else if (key == "restarts" && spec.kind == StrategyKind::Anneal) {
      spec.restarts = static_cast<int>(parse_spec_int(key, value));
      check(spec.restarts > 0, "--strategy: restarts must be positive");
    } else if (key == "particles" && spec.kind == StrategyKind::Pso) {
      spec.particles = static_cast<int>(parse_spec_int(key, value));
      check(spec.particles > 1, "--strategy: particles must be at least 2");
    } else {
      fail_unknown_key("--strategy", key, allowed);
    }
  }
  return spec;
}

namespace detail {

TunedKernel select_winner(const SearchEngine& engine, const SearchOptions& opt,
                          std::vector<Measured> measured,
                          SearchStats* stats) {
  check(!measured.empty(),
        "strategy: no candidate produced a positive measurement");
  std::sort(measured.begin(), measured.end(), better);
  measured.erase(std::unique(measured.begin(), measured.end(),
                             [](const Measured& a, const Measured& b) {
                               return a.key == b.key;
                             }),
                 measured.end());

  if (opt.shape) {
    // The measurement already is the objective (the delivered cost of the
    // shape class): the top-ranked candidate wins outright.
    return engine.profile_candidate(measured.front().params, opt);
  }

  // Mirror SearchEngine::tune stage 2: sweep the finalists in parallel,
  // reduce in rank order with a strict >, fall back to the top stage-1
  // measurement when every sweep came back empty.
  const std::size_t keep = std::min<std::size_t>(
      static_cast<std::size_t>(opt.stage1_keep), measured.size());
  struct SweepResult {
    std::vector<std::pair<std::int64_t, double>> curve;
    double peak = 0;
    std::int64_t peak_n = 0;
  };
  std::optional<ThreadPool> local_pool;
  if (opt.threads > 0) local_pool.emplace(opt.threads);
  ThreadPool& pool = local_pool ? *local_pool : ThreadPool::global();
  std::vector<SweepResult> sweeps(keep);
  pool.parallel_for(
      static_cast<std::int64_t>(keep),
      [&](std::int64_t begin, std::int64_t end, int) {
        for (std::int64_t i = begin; i < end; ++i) {
          SweepResult& r = sweeps[static_cast<std::size_t>(i)];
          r.curve = engine.sweep(measured[static_cast<std::size_t>(i)].params,
                                 opt.stage2_max_n);
          for (const auto& [n, g] : r.curve) {
            if (g > r.peak) {
              r.peak = g;
              r.peak_n = n;
            }
          }
        }
      });
  TunedKernel best;
  SearchStats st;
  for (std::size_t i = 0; i < keep; ++i) {
    const Measured& m = measured[i];
    SweepResult& r = sweeps[i];
    st.stage2_points += static_cast<std::int64_t>(r.curve.size());
    if (r.curve.empty()) {
      ++st.stage2_empty;
      st.stage2_failed.push_back(m.params.summary());
    }
    if (r.peak > best.best_gflops) {
      best.params = m.params;
      best.stage1_gflops = m.gflops;
      best.best_gflops = r.peak;
      best.best_n = r.peak_n;
      best.curve = std::move(r.curve);
    }
  }
  if (best.best_gflops <= 0) {
    st.used_stage1_fallback = true;
    const Measured& top = measured.front();
    best.params = top.params;
    best.stage1_gflops = top.gflops;
    best.best_gflops = top.gflops;
    best.best_n = engine.model().stage1_size(best.params);
    best.curve = {{best.best_n, top.gflops}};
  }
  if (stats) {
    stats->stage2_points = st.stage2_points;
    stats->stage2_empty = st.stage2_empty;
    stats->stage2_failed = std::move(st.stage2_failed);
    stats->used_stage1_fallback = st.used_stage1_fallback;
  }
  check(best.best_gflops > 0,
        "strategy: neither the finalist sweep nor the stage-1 fallback "
        "produced a positive measurement");
  return best;
}

Grid::Grid(const SearchEngine& engine, const SearchOptions& opt)
    : axes_(grid_axes(opt.enumeration.include_row_major)),
      dev_(engine.model().spec()),
      restrict_algo_(opt.restrict_algo),
      restrict_local_(opt.restrict_local) {
  const int nl = static_cast<int>(axes_.layouts.size());
  sizes_ = {static_cast<int>(axes_.Mwg.size()),
            static_cast<int>(axes_.Nwg.size()),
            static_cast<int>(axes_.Kwg.size()),
            static_cast<int>(axes_.dim.size()),
            static_cast<int>(axes_.dim.size()),
            static_cast<int>(axes_.Kwi.size()),
            static_cast<int>(axes_.vw.size()),
            4,   // share_a/share_b bits
            3,   // algorithm
            2,   // MdimA reshape selector
            2,   // NdimB reshape selector
            4,   // stride_m/stride_n bits
            nl,  // layout_a
            nl}; // layout_b
}

std::optional<KernelParams> Grid::decode(const Coords& c,
                                         Precision prec) const {
  KernelParams p;
  p.prec = prec;
  p.Mwg = axes_.Mwg[static_cast<std::size_t>(c[0])];
  p.Nwg = axes_.Nwg[static_cast<std::size_t>(c[1])];
  p.Kwg = axes_.Kwg[static_cast<std::size_t>(c[2])];
  p.MdimC = axes_.dim[static_cast<std::size_t>(c[3])];
  p.NdimC = axes_.dim[static_cast<std::size_t>(c[4])];
  p.Kwi = axes_.Kwi[static_cast<std::size_t>(c[5])];
  p.vw = axes_.vw[static_cast<std::size_t>(c[6])];
  // The enumerator's structural rules (its loop-level `continue`s), which
  // validate() does not re-check: every decodable point must be one the
  // exhaustive walk could visit.
  if (p.Mwg % p.MdimC != 0 || p.Nwg % p.NdimC != 0) return std::nullopt;
  const int wg = p.MdimC * p.NdimC;
  if (wg > dev_.max_workgroup_size || wg < 16) return std::nullopt;
  const int Mwi = p.Mwg / p.MdimC;
  const int Nwi = p.Nwg / p.NdimC;
  if (Mwi > 8 || Nwi > 12) return std::nullopt;
  if (p.Kwg % p.Kwi != 0) return std::nullopt;
  if (Mwi % p.vw != 0 || Nwi % p.vw != 0) return std::nullopt;
  const int share = c[7];
  p.share_a = (share & 1) != 0;
  p.share_b = (share & 2) != 0;
  constexpr codegen::Algorithm kAlgos[] = {codegen::Algorithm::BA,
                                           codegen::Algorithm::PL,
                                           codegen::Algorithm::DB};
  p.algo = kAlgos[static_cast<std::size_t>(c[8])];
  if (p.algo != codegen::Algorithm::BA && share == 0) return std::nullopt;
  p.MdimA = c[9] != 0 && wg >= 2 * p.MdimC ? 2 * p.MdimC : p.MdimC;
  p.NdimB = c[10] != 0 && wg >= 2 * p.NdimC ? 2 * p.NdimC : p.NdimC;
  p.stride_m = (c[11] & 1) != 0;
  p.stride_n = (c[11] & 2) != 0;
  p.layout_a = axes_.layouts[static_cast<std::size_t>(c[12])];
  p.layout_b = axes_.layouts[static_cast<std::size_t>(c[13])];
  if (restrict_algo_ && p.algo != *restrict_algo_) return std::nullopt;
  if (restrict_local_ && (p.share_a || p.share_b) != *restrict_local_)
    return std::nullopt;
  if (validate(p, dev_)) return std::nullopt;
  return p;
}

std::optional<Grid::Coords> Grid::encode(const KernelParams& p) const {
  const auto find_in = [](const std::vector<int>& values,
                          int v) -> std::optional<int> {
    for (std::size_t i = 0; i < values.size(); ++i)
      if (values[i] == v) return static_cast<int>(i);
    return std::nullopt;
  };
  Coords c{};
  const auto iM = find_in(axes_.Mwg, p.Mwg);
  const auto iN = find_in(axes_.Nwg, p.Nwg);
  const auto iK = find_in(axes_.Kwg, p.Kwg);
  const auto iMd = find_in(axes_.dim, p.MdimC);
  const auto iNd = find_in(axes_.dim, p.NdimC);
  const auto iKwi = find_in(axes_.Kwi, p.Kwi);
  const auto ivw = find_in(axes_.vw, p.vw);
  if (!iM || !iN || !iK || !iMd || !iNd || !iKwi || !ivw)
    return std::nullopt;
  c[0] = *iM;
  c[1] = *iN;
  c[2] = *iK;
  c[3] = *iMd;
  c[4] = *iNd;
  c[5] = *iKwi;
  c[6] = *ivw;
  c[7] = (p.share_a ? 1 : 0) | (p.share_b ? 2 : 0);
  switch (p.algo) {
    case codegen::Algorithm::BA: c[8] = 0; break;
    case codegen::Algorithm::PL: c[8] = 1; break;
    case codegen::Algorithm::DB: c[8] = 2; break;
  }
  if (p.MdimA == p.MdimC) {
    c[9] = 0;
  } else if (p.MdimA == 2 * p.MdimC) {
    c[9] = 1;
  } else {
    return std::nullopt;
  }
  if (p.NdimB == p.NdimC) {
    c[10] = 0;
  } else if (p.NdimB == 2 * p.NdimC) {
    c[10] = 1;
  } else {
    return std::nullopt;
  }
  c[11] = (p.stride_m ? 1 : 0) | (p.stride_n ? 2 : 0);
  std::optional<int> la, lb;
  for (std::size_t i = 0; i < axes_.layouts.size(); ++i) {
    if (axes_.layouts[i] == p.layout_a) la = static_cast<int>(i);
    if (axes_.layouts[i] == p.layout_b) lb = static_cast<int>(i);
  }
  if (!la || !lb) return std::nullopt;
  c[12] = *la;
  c[13] = *lb;
  return c;
}

}  // namespace detail

std::unique_ptr<SearchStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Exhaustive: return detail::make_exhaustive();
    case StrategyKind::ModelTopK: return detail::make_model_topk();
    case StrategyKind::Anneal: return detail::make_anneal();
    case StrategyKind::Pso: return detail::make_pso();
  }
  fail("make_strategy: unknown strategy kind");
}

TunedKernel run_strategy(const SearchEngine& engine, Precision prec,
                         const SearchOptions& opt, const StrategySpec& spec,
                         StrategyStats* stats) {
  StrategyStats st;
  st.kind = spec.kind;
  const auto strat = make_strategy(spec.kind);
  TunedKernel t = strat->run(engine, prec, opt, spec, &st);
  st.fraction_measured =
      st.space > 0
          ? static_cast<double>(st.measured) / static_cast<double>(st.space)
          : 0;
  if (stats) *stats = std::move(st);
  return t;
}

}  // namespace gemmtune::tuner::strategy
