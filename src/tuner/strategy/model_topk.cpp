// Model-ranked top-K (tritonBLAS-style analytical pre-selection): rank the
// FULL candidate space with the analytic performance model — a pure
// arithmetic pass, free relative to a real-hardware measurement — then
// measure only the top-K sliver and run the standard finalist sweep over
// it. On real hardware the ranking pass costs microseconds per candidate
// while each measurement costs a kernel launch; here the budget accounting
// is what the quality gate audits.
#include <algorithm>
#include <iterator>
#include <optional>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "tuner/strategy/detail.hpp"

namespace gemmtune::tuner::strategy::detail {

namespace {

class ModelTopKStrategy final : public SearchStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::ModelTopK; }

  TunedKernel run(const SearchEngine& engine, codegen::Precision prec,
                  const SearchOptions& opt, const StrategySpec& spec,
                  StrategyStats* stats) const override {
    StrategyStats st;
    const std::int64_t budget = spec.budget > 0 ? spec.budget : 64;
    const std::vector<codegen::KernelParams> candidates =
        engine.candidate_space(prec, opt, &st.search.enumeration);
    check(!candidates.empty(), "model_topk: no valid candidates for device");
    st.space = static_cast<std::int64_t>(candidates.size());
    st.model_ranked = st.space;

    // Rank every candidate analytically. Contiguous chunks merged in
    // worker order keep the ranked list in candidate-index order for any
    // thread count (the same discipline as the exhaustive stage 1).
    std::optional<ThreadPool> local_pool;
    if (opt.threads > 0) local_pool.emplace(opt.threads);
    ThreadPool& pool = local_pool ? *local_pool : ThreadPool::global();
    const auto workers = static_cast<std::size_t>(pool.size());
    std::vector<std::vector<Measured>> part(workers);
    pool.parallel_for(
        static_cast<std::int64_t>(candidates.size()),
        [&](std::int64_t begin, std::int64_t end, int worker) {
          auto& out = part[static_cast<std::size_t>(worker)];
          for (std::int64_t i = begin; i < end; ++i) {
            const auto& p = candidates[static_cast<std::size_t>(i)];
            const double g = engine.measure_candidate(p, opt);
            if (g <= 0) continue;
            out.push_back({p, g, static_cast<std::size_t>(i), p.key()});
          }
        });
    std::vector<Measured> ranked;
    for (auto& w : part)
      ranked.insert(ranked.end(), std::make_move_iterator(w.begin()),
                    std::make_move_iterator(w.end()));
    check(!ranked.empty(), "model_topk: every candidate failed the model");

    // Only the top-K sliver is "measured" (counts toward the budget).
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(budget),
                              ranked.size());
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(k),
                      ranked.end(), better);
    ranked.resize(k);
    st.measured = static_cast<std::int64_t>(k);
    st.search.stage1_evaluated = static_cast<std::int64_t>(k);

    TunedKernel t = select_winner(engine, opt, std::move(ranked), &st.search);
    if (stats) {
      stats->space = st.space;
      stats->measured = st.measured;
      stats->model_ranked = st.model_ranked;
      stats->search = std::move(st.search);
    }
    return t;
  }
};

}  // namespace

std::unique_ptr<SearchStrategy> make_model_topk() {
  return std::make_unique<ModelTopKStrategy>();
}

}  // namespace gemmtune::tuner::strategy::detail
