// Particle swarm optimization over the parameter grid (CLTune-style).
//
// Particles hold continuous positions over the 14 grid axes; fitness is
// evaluated at the rounded grid point. Velocity updates use the standard
// constriction coefficients (w = 0.72, c1 = c2 = 1.49) with per-particle
// RNG streams. The swarm is updated serially in particle-index order with
// strict-> comparisons for pbest/gbest, so the run is trivially
// bit-identical for any --threads and repeated runs.
#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tuner/strategy/detail.hpp"

namespace gemmtune::tuner::strategy::detail {

namespace {

constexpr double kInertia = 0.72;
constexpr double kCognitive = 1.49;
constexpr double kSocial = 1.49;
constexpr std::uint64_t kParticleSalt = 0xB05E;

class PsoStrategy final : public SearchStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::Pso; }

  TunedKernel run(const SearchEngine& engine, codegen::Precision prec,
                  const SearchOptions& opt, const StrategySpec& spec,
                  StrategyStats* stats) const override {
    StrategyStats st;
    const std::int64_t budget = spec.budget > 0 ? spec.budget : 256;
    const std::vector<codegen::KernelParams> candidates =
        engine.candidate_space(prec, opt, &st.search.enumeration);
    check(!candidates.empty(), "pso: no valid candidates for device");
    st.space = static_cast<std::int64_t>(candidates.size());

    std::unordered_map<std::string, std::size_t> space_index;
    space_index.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      space_index.emplace(candidates[i].key(), i);

    const Grid grid(engine, opt);
    const int particles = std::max(
        2, std::min<int>(spec.particles, static_cast<int>(budget)));

    using Pos = std::array<double, Grid::kAxes>;
    struct Particle {
      Pos pos{}, vel{};
      Rng rng{0};
      Measured pbest;  ///< gflops 0 until a valid point is found
      bool has_pbest = false;
    };
    std::vector<Particle> swarm(static_cast<std::size_t>(particles));

    // Shared measurement memo: revisiting a grid point is free; only first
    // measurements consume the budget.
    std::unordered_map<std::string, double> memo;
    std::vector<Measured> fresh;
    std::int64_t measured_count = 0;
    const auto evaluate =
        [&](const Pos& pos) -> std::optional<Measured> {
      Grid::Coords c{};
      for (int a = 0; a < Grid::kAxes; ++a) {
        const int size = grid.axis_size(a);
        int v = static_cast<int>(std::llround(pos[static_cast<std::size_t>(a)]));
        v = std::clamp(v, 0, size - 1);
        c[static_cast<std::size_t>(a)] = v;
      }
      const auto p = grid.decode(c, prec);
      ++st.proposals;
      if (!p) {
        ++st.proposals_invalid;
        return std::nullopt;
      }
      const std::string key = p->key();
      double g = 0;
      if (const auto it = memo.find(key); it != memo.end()) {
        g = it->second;
      } else {
        // Budget exhausted: unmeasured points stay unknown rather than
        // triggering hidden extra measurements.
        if (measured_count >= budget) return std::nullopt;
        g = engine.measure_candidate(*p, opt);
        memo.emplace(key, g);
        ++measured_count;
        if (g > 0) {
          const auto si = space_index.find(key);
          fresh.push_back({*p, g,
                           si != space_index.end()
                               ? si->second
                               : static_cast<std::size_t>(-1),
                           key});
        }
      }
      if (g <= 0) return std::nullopt;
      const auto si = space_index.find(key);
      return Measured{*p, g,
                      si != space_index.end() ? si->second
                                              : static_cast<std::size_t>(-1),
                      key};
    };

    // Spread the swarm evenly over the candidate space (the space is
    // sorted by kernel key, so this samples structurally diverse points);
    // particle 0 starts at the Table II seed when the search is seeded.
    for (int j = 0; j < particles; ++j) {
      Particle& pt = swarm[static_cast<std::size_t>(j)];
      pt.rng = Rng(mix_seed(spec.seed,
                            kParticleSalt + static_cast<std::uint64_t>(j)));
      std::size_t start =
          candidates.size() <= 1
              ? 0
              : (static_cast<std::size_t>(j) * (candidates.size() - 1)) /
                    static_cast<std::size_t>(particles - 1);
      if (j == 0 && opt.seed_with_table2) start = candidates.size() - 1;
      std::optional<Grid::Coords> c;
      for (std::size_t probe = 0; probe < candidates.size() && !c; ++probe)
        c = grid.encode(candidates[(start + probe) % candidates.size()]);
      check(c.has_value(), "pso: no encodable start point");
      for (int a = 0; a < Grid::kAxes; ++a) {
        pt.pos[static_cast<std::size_t>(a)] =
            static_cast<double>((*c)[static_cast<std::size_t>(a)]);
        pt.vel[static_cast<std::size_t>(a)] =
            pt.rng.next_double(-1.0, 1.0);
      }
      if (const auto m = evaluate(pt.pos)) {
        pt.pbest = *m;
        pt.has_pbest = true;
      }
    }
    Measured gbest;
    bool has_gbest = false;
    const auto update_gbest = [&]() {
      for (const Particle& pt : swarm) {
        if (!pt.has_pbest) continue;
        if (!has_gbest || better(pt.pbest, gbest)) {
          gbest = pt.pbest;
          has_gbest = true;
        }
      }
    };
    update_gbest();

    // Iterate until the budget is spent (with an iteration cap for spaces
    // smaller than the budget). Fully serial: determinism by construction.
    const std::int64_t max_iters = 8 * budget / particles + 64;
    for (std::int64_t iter = 0;
         iter < max_iters && measured_count < budget; ++iter) {
      for (int j = 0; j < particles; ++j) {
        Particle& pt = swarm[static_cast<std::size_t>(j)];
        const Pos anchor_p = pt.has_pbest ? to_pos(pt.pbest, grid) : pt.pos;
        const Pos anchor_g = has_gbest ? to_pos(gbest, grid) : pt.pos;
        for (int a = 0; a < Grid::kAxes; ++a) {
          const auto ai = static_cast<std::size_t>(a);
          const double r1 = pt.rng.next_double();
          const double r2 = pt.rng.next_double();
          pt.vel[ai] = kInertia * pt.vel[ai] +
                       kCognitive * r1 * (anchor_p[ai] - pt.pos[ai]) +
                       kSocial * r2 * (anchor_g[ai] - pt.pos[ai]);
          // Velocity clamp: half the axis span keeps particles on the grid.
          const double vmax =
              std::max(1.0, static_cast<double>(grid.axis_size(a)) / 2.0);
          pt.vel[ai] = std::clamp(pt.vel[ai], -vmax, vmax);
          pt.pos[ai] = std::clamp(
              pt.pos[ai] + pt.vel[ai], 0.0,
              static_cast<double>(grid.axis_size(a) - 1));
        }
        if (const auto m = evaluate(pt.pos)) {
          if (!pt.has_pbest || better(*m, pt.pbest)) {
            pt.pbest = *m;
            pt.has_pbest = true;
          }
        }
      }
      update_gbest();
    }

    st.measured = measured_count;
    st.search.stage1_evaluated = measured_count;
    TunedKernel t = select_winner(engine, opt, std::move(fresh), &st.search);
    if (stats) *stats = std::move(st);
    return t;
  }

 private:
  static std::array<double, Grid::kAxes> to_pos(const Measured& m,
                                                const Grid& grid) {
    std::array<double, Grid::kAxes> pos{};
    // pbest/gbest are stored as params; their grid coordinates are always
    // recoverable because every measured point decoded from the grid.
    const auto c = grid.encode(m.params);
    for (int a = 0; a < Grid::kAxes; ++a)
      pos[static_cast<std::size_t>(a)] = static_cast<double>(
          c ? (*c)[static_cast<std::size_t>(a)] : 0);
    return pos;
  }
};

}  // namespace

std::unique_ptr<SearchStrategy> make_pso() {
  return std::make_unique<PsoStrategy>();
}

}  // namespace gemmtune::tuner::strategy::detail
