// The reference strategy: the paper's exhaustive two-stage search,
// verbatim. Every candidate in the space is measured.
#include "tuner/strategy/detail.hpp"

namespace gemmtune::tuner::strategy::detail {

namespace {

class ExhaustiveStrategy final : public SearchStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::Exhaustive; }

  TunedKernel run(const SearchEngine& engine, codegen::Precision prec,
                  const SearchOptions& opt, const StrategySpec&,
                  StrategyStats* stats) const override {
    SearchStats st;
    TunedKernel t = engine.tune(prec, opt, &st);
    if (stats) {
      stats->space = st.stage1_evaluated;
      stats->measured = st.stage1_evaluated;
      stats->search = std::move(st);
    }
    return t;
  }
};

}  // namespace

std::unique_ptr<SearchStrategy> make_exhaustive() {
  return std::make_unique<ExhaustiveStrategy>();
}

}  // namespace gemmtune::tuner::strategy::detail
