// Surveys every simulated processor: peak, tuned DGEMM/SGEMM kernel
// performance, and implementation-level performance — a one-screen summary
// of the paper's evaluation.
//
//   build/examples/device_survey
#include <iostream>

#include "blas/gemm.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "tuner/results_db.hpp"

using namespace gemmtune;
using codegen::Precision;

int main() {
  TextTable t;
  t.set_header({"Processor", "Type", "Peak DP", "Kernel DP", "Impl DP",
                "Peak SP", "Kernel SP", "Impl SP"});
  for (simcl::DeviceId id : simcl::all_devices()) {
    const auto& dev = simcl::device_spec(id);
    blas::GemmEngine engine(id);
    std::vector<std::string> row = {dev.code_name,
                                    dev.is_gpu() ? "GPU" : "CPU"};
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto kernel = tuner::profile_kernel(
          id, codegen::table2_entry(id, prec).params);
      const double impl = engine.estimate_gflops(GemmType::NN, prec, 5760);
      row.push_back(fmt_gflops(prec == Precision::DP ? dev.peak_dp_gflops
                                                     : dev.peak_sp_gflops));
      row.push_back(fmt_gflops(kernel.best_gflops));
      row.push_back(fmt_gflops(impl));
    }
    // Reorder: we pushed DP triple then SP triple; header expects that.
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nKernel = fastest A^T*B kernel (Table II parameters); "
               "Impl = column-major GEMM including copy overhead at "
               "N=5760.\n";
  return 0;
}
