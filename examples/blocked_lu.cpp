// Domain example: right-looking blocked LU factorization (no pivoting on a
// diagonally dominant matrix), with its trailing-matrix update — by far
// the dominant cost — performed by the tuned GEMM engine. This is exactly
// the LAPACK-style use of GEMM the paper's introduction describes.
//
//   build/examples/blocked_lu
#include <cstdio>

#include "blas/gemm.hpp"
#include "common/rng.hpp"

using namespace gemmtune;

namespace {

// Unblocked LU on the [k..k+nb) panel (in place, no pivoting).
void panel_lu(Matrix<double>& A, index_t k, index_t nb, index_t n) {
  for (index_t j = k; j < k + nb; ++j) {
    const double piv = A.at(j, j);
    for (index_t i = j + 1; i < n; ++i) A.at(i, j) /= piv;
    const index_t jmax = std::min(k + nb, n);
    for (index_t jj = j + 1; jj < jmax; ++jj) {
      const double a = A.at(j, jj);
      for (index_t i = j + 1; i < n; ++i) A.at(i, jj) -= A.at(i, j) * a;
    }
  }
}

// Triangular solve L11 * U12 = A12 for the block row (L11 unit lower).
void block_row_solve(Matrix<double>& A, index_t k, index_t nb, index_t n) {
  for (index_t j = k + nb; j < n; ++j) {
    for (index_t i = k; i < k + nb; ++i) {
      double s = A.at(i, j);
      for (index_t p = k; p < i; ++p) s -= A.at(i, p) * A.at(p, j);
      A.at(i, j) = s;
    }
  }
}

}  // namespace

int main() {
  const index_t n = 192, nb = 64;
  Rng rng(13);
  Matrix<double> A(n, n);
  A.fill_random(rng);
  for (index_t i = 0; i < n; ++i) A.at(i, i) += static_cast<double>(n);
  const Matrix<double> A0 = A;

  blas::GemmEngine engine(simcl::DeviceId::Fermi);
  double gemm_seconds = 0;

  for (index_t k = 0; k < n; k += nb) {
    panel_lu(A, k, nb, n);
    if (k + nb >= n) break;
    block_row_solve(A, k, nb, n);
    // Trailing update: A22 <- A22 - L21 * U12 on the device.
    const index_t rest = n - k - nb;
    Matrix<double> L21(rest, nb), U12(nb, rest), A22(rest, rest);
    for (index_t i = 0; i < rest; ++i)
      for (index_t j = 0; j < nb; ++j) L21.at(i, j) = A.at(k + nb + i, k + j);
    for (index_t i = 0; i < nb; ++i)
      for (index_t j = 0; j < rest; ++j)
        U12.at(i, j) = A.at(k + i, k + nb + j);
    for (index_t i = 0; i < rest; ++i)
      for (index_t j = 0; j < rest; ++j)
        A22.at(i, j) = A.at(k + nb + i, k + nb + j);
    const auto prof = engine.gemm(Transpose::No, Transpose::No, rest, rest,
                                  nb, -1.0, L21, U12, 1.0, A22);
    gemm_seconds += prof.total_seconds;
    for (index_t i = 0; i < rest; ++i)
      for (index_t j = 0; j < rest; ++j)
        A.at(k + nb + i, k + nb + j) = A22.at(i, j);
  }

  // Verify: L * U must reproduce A0 (L unit lower, U upper, both stored
  // in A).
  double err = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double s = 0;
      for (index_t p = 0; p <= std::min(i, j); ++p) {
        const double l = p < i ? A.at(i, p) : 1.0;
        s += l * A.at(p, j);
      }
      err = std::max(err, std::abs(s - A0.at(i, j)));
    }
  }
  std::printf("blocked LU of a %lld x %lld matrix (block size %lld)\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(nb));
  std::printf("max |L*U - A|: %.3e\n", err);
  std::printf("simulated GEMM time in trailing updates: %.3f ms\n",
              gemm_seconds * 1e3);
  return err < 1e-8 ? 0 : 1;
}
