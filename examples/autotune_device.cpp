// Runs the two-stage heuristic search (paper Section III-F) on one device
// and compares the selected kernel with the paper's Table II entry.
//
//   build/examples/autotune_device [device] [SGEMM|DGEMM] [budget]
//   e.g. build/examples/autotune_device Cayman DGEMM 20000
#include <cstdio>
#include <string>

#include "codegen/paper_kernels.hpp"
#include "tuner/results_db.hpp"

using namespace gemmtune;

int main(int argc, char** argv) {
  const std::string device = argc > 1 ? argv[1] : "Tahiti";
  const std::string prec_s = argc > 2 ? argv[2] : "DGEMM";
  const int budget = argc > 3 ? std::stoi(argv[3]) : 20000;
  const simcl::DeviceId id = simcl::device_by_name(device);
  const codegen::Precision prec =
      prec_s == "DGEMM" ? codegen::Precision::DP : codegen::Precision::SP;

  tuner::SearchEngine engine(id);
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = budget;
  tuner::SearchStats stats;
  std::printf("tuning %s on %s (budget %d candidates)...\n", prec_s.c_str(),
              device.c_str(), budget);
  const auto best = engine.tune(prec, opt, &stats);

  std::printf("\nenumeration: %lld raw combinations, %lld invalid, %lld "
              "valid (sampled %lld)\n",
              static_cast<long long>(stats.enumeration.raw_combinations),
              static_cast<long long>(stats.enumeration.invalid),
              static_cast<long long>(stats.enumeration.kept),
              static_cast<long long>(stats.stage1_evaluated));
  std::printf("stage 1: %lld kernels measured, %lld failed at run time\n",
              static_cast<long long>(stats.stage1_evaluated),
              static_cast<long long>(stats.stage1_failed));
  std::printf("stage 2: %lld sweep points over the top-%d kernels\n\n",
              static_cast<long long>(stats.stage2_points), opt.stage1_keep);

  std::printf("selected kernel: %s\n", best.params.summary().c_str());
  std::printf("  stage-1 performance: %.1f GFlop/s\n", best.stage1_gflops);
  std::printf("  best performance:    %.1f GFlop/s at N=%lld\n",
              best.best_gflops, static_cast<long long>(best.best_n));

  const auto paper = codegen::table2_entry(id, prec);
  std::printf("\npaper's Table II kernel: %s\n",
              paper.params.summary().c_str());
  std::printf("  paper-reported maximum: %.1f GFlop/s\n", paper.max_gflops);
  std::printf("  our search vs paper:    %.2fx\n",
              best.best_gflops / paper.max_gflops);

  // Persist the result the way a long hardware search would.
  tuner::TunedDatabase db;
  db.put(id, prec, best);
  const std::string path = "tuned_" + device + "_" + prec_s + ".json";
  db.save_file(path);
  std::printf("\nsaved tuning result to %s\n", path.c_str());
  return 0;
}
