// The paper's Section IV-B pipeline written as classic OpenCL host code
// against the simulated runtime: build a program from generated OpenCL C
// source (pack kernels + the tuned GEMM kernel), create buffers, bind
// arguments, enqueue pack -> GEMM -> unpack, read back, and verify.
//
//   build/examples/opencl_host_flow
#include <cstdio>

#include "blas/hostblas.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/pack_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "kernelir/emit.hpp"
#include "layout/packing.hpp"
#include "rt/program.hpp"

using namespace gemmtune;
using codegen::DirectGemmKernelArgs;
using codegen::GemmKernelArgs;
using codegen::PackKernelArgs;
using codegen::Precision;

int main() {
  const auto id = simcl::DeviceId::Tahiti;
  const auto params = codegen::table2_entry(id, Precision::DP).params;
  const index_t M = 60, N = 40, K = 50;  // deliberately not multiples

  // 1. "Compile" the program: emit the generated kernels as OpenCL C and
  //    build them back through the front-end, exactly as a real host
  //    program hands source text to clBuildProgram.
  std::string source;
  source += ir::emit_opencl(codegen::generate_gemm_kernel(params));
  source += ir::emit_opencl(codegen::generate_pack_kernel(
      Precision::DP, params.layout_a, params.Kwg, params.Mwg,
      /*src_row_major_rc=*/true));  // A operand, non-transposed source
  source += ir::emit_opencl(codegen::generate_pack_kernel(
      Precision::DP, params.layout_b, params.Kwg, params.Nwg,
      /*src_row_major_rc=*/false));  // B operand
  source += ir::emit_opencl(codegen::generate_pack_kernel(
      Precision::DP, BlockLayout::RowMajor, params.Mwg, params.Nwg,
      /*src_row_major_rc=*/false));  // C operand into the padded buffer
  source += ir::emit_opencl(codegen::generate_unpack_c_kernel(Precision::DP));

  simcl::Context ctx(simcl::device_spec(id));
  rt::Program program(ctx, source);
  std::printf("built program with %zu kernels:\n",
              program.kernel_names().size());
  for (const auto& n : program.kernel_names())
    std::printf("  %s\n", n.c_str());

  // 2. Host data and device buffers.
  Rng rng(99);
  Matrix<double> A(M, K), B(K, N), C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  Matrix<double> Cref = C;
  const auto ext = packed_extents(M, N, K, params.Mwg, params.Nwg,
                                  params.Kwg);
  auto upload = [&](const Matrix<double>& X) {
    auto buf = ctx.create_buffer(X.size() * sizeof(double));
    simcl::CommandQueue q(ctx);
    q.enqueue_write(*buf, X.data(), X.size() * sizeof(double));
    return buf;
  };
  auto dA = upload(A);
  auto dB = upload(B);
  auto dC = upload(C);
  auto pA = ctx.create_buffer(
      static_cast<std::size_t>(ext.Kp * ext.Mp) * sizeof(double));
  auto pB = ctx.create_buffer(
      static_cast<std::size_t>(ext.Kp * ext.Np) * sizeof(double));
  auto pC = ctx.create_buffer(
      static_cast<std::size_t>(ext.Mp * ext.Np) * sizeof(double));

  simcl::CommandQueue queue(ctx);
  const auto pack_names = program.kernel_names();

  // 3. Pack the three operands (zero padding comes from the zero-filled
  //    destination buffers).
  auto pack = [&](const std::string& kname, simcl::BufferPtr dst,
                  simcl::BufferPtr src, index_t R, index_t Cc, index_t Rp,
                  index_t Cp, index_t ld) {
    rt::KernelCall call(program, kname);
    call.arg(PackKernelArgs::dst, dst)
        .arg(PackKernelArgs::src, src)
        .arg(PackKernelArgs::R, R)
        .arg(PackKernelArgs::C, Cc)
        .arg(PackKernelArgs::Rp, Rp)
        .arg(PackKernelArgs::Cp, Cp)
        .arg(PackKernelArgs::ld, ld);
    call.enqueue(queue, {R, Cc}, {1, 1});
  };
  pack(pack_names[1], pA, dA, K, M, ext.Kp, ext.Mp, A.ld());
  pack(pack_names[2], pB, dB, K, N, ext.Kp, ext.Np, B.ld());
  pack(pack_names[3], pC, dC, M, N, ext.Mp, ext.Np, C.ld());

  // 4. The tuned GEMM kernel.
  rt::KernelCall gemm(program, pack_names[0]);
  gemm.arg(GemmKernelArgs::C, pC)
      .arg(GemmKernelArgs::A, pA)
      .arg(GemmKernelArgs::B, pB)
      .arg(GemmKernelArgs::M, ext.Mp)
      .arg(GemmKernelArgs::N, ext.Np)
      .arg(GemmKernelArgs::K, ext.Kp)
      .arg(GemmKernelArgs::alpha, 1.5)
      .arg(GemmKernelArgs::beta, -0.5);
  const auto geo = codegen::launch_geometry(params, ext.Mp, ext.Np);
  const auto counters = gemm.enqueue(queue, geo.global, geo.local);

  // 5. Unpack and read back.
  pack(pack_names[4], dC, pC, M, N, ext.Mp, ext.Np, C.ld());
  queue.enqueue_read(*dC, C.data(), C.size() * sizeof(double));

  // 6. Verify and report the queue's simulated timeline.
  hostblas::gemm_parallel(Transpose::No, Transpose::No, M, N, K, 1.5, A, B,
                          -0.5, Cref);
  std::printf("\nmax |error| vs reference: %.3e\n", max_abs_diff(C, Cref));
  std::printf("GEMM kernel flops: %llu (2*Mp*Np*Kp = %lld)\n",
              static_cast<unsigned long long>(counters.flops),
              static_cast<long long>(2 * ext.Mp * ext.Np * ext.Kp));
  std::printf("\nsimulated queue timeline:\n");
  for (const auto& e : queue.events())
    std::printf("  %-24s %9.3f us%s\n", e.name.c_str(), e.seconds * 1e6,
                e.bytes ? strf("  (%zu bytes)", e.bytes).c_str() : "");
  std::printf("total simulated time: %.3f ms\n",
              queue.elapsed_seconds() * 1e3);
  return 0;
}
