// Quickstart: multiply two matrices with the auto-tuned GEMM engine on a
// simulated AMD Tahiti GPU, verify against the host reference, and print
// the simulated timing breakdown.
//
//   build/examples/quickstart
#include <cstdio>

#include "blas/gemm.hpp"
#include "common/rng.hpp"

using namespace gemmtune;

int main() {
  // 1. Pick a device. All six processors of the paper's evaluation (and
  //    the Cypress GPU) are available in the registry.
  blas::GemmEngine engine(simcl::DeviceId::Tahiti);

  // 2. Build column-major host matrices (BLAS convention).
  const index_t M = 300, N = 200, K = 150;
  Rng rng(42);
  Matrix<double> A(M, K), B(K, N), C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);

  // 3. C <- 1.5*A*B - 0.5*C. The engine packs the operands into the tuned
  //    kernel's block-major layouts, runs the generated OpenCL kernel in
  //    the simulator, and unpacks the result. verify=true also checks the
  //    result against the host reference.
  const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K, 1.5,
                                A, B, -0.5, C, /*verify=*/true);

  std::printf("C[0,0] = %.6f\n", C.at(0, 0));
  std::printf("max |error| vs host reference: %.3e\n", prof.max_error);
  std::printf("simulated device time: %.3f ms (copy %.3f ms + kernel %.3f "
              "ms) -> %.1f GFlop/s\n",
              prof.total_seconds * 1e3, prof.copy_seconds * 1e3,
              prof.kernel_seconds * 1e3, prof.gflops);

  // 4. For large problems, ask for the timing estimate only (no data).
  const double g = engine.estimate_gflops(GemmType::NN,
                                          codegen::Precision::DP, 5760);
  std::printf("estimated DGEMM at N=5760: %.0f GFlop/s\n", g);
  return 0;
}
