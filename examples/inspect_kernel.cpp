// Prints the OpenCL C source of a generated GEMM kernel — by default the
// paper's fastest Tahiti SGEMM kernel (Table II).
//
//   build/examples/inspect_kernel [device] [SGEMM|DGEMM]
//   e.g. build/examples/inspect_kernel Fermi DGEMM
#include <cstdio>
#include <string>

#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/emit.hpp"

using namespace gemmtune;

int main(int argc, char** argv) {
  const std::string device = argc > 1 ? argv[1] : "Tahiti";
  const std::string prec_s = argc > 2 ? argv[2] : "SGEMM";
  const simcl::DeviceId id = simcl::device_by_name(device);
  const codegen::Precision prec =
      prec_s == "DGEMM" ? codegen::Precision::DP : codegen::Precision::SP;

  const auto entry = codegen::table2_entry(id, prec);
  std::printf("// fastest %s kernel on %s (Table II): %s\n", prec_s.c_str(),
              device.c_str(), entry.params.summary().c_str());
  std::printf("// paper-reported maximum: %.0f GFlop/s (%.0f%% of peak)\n\n",
              entry.max_gflops, 100 * entry.efficiency);
  const ir::Kernel k = codegen::generate_gemm_kernel(entry.params);
  std::printf("%s", ir::emit_opencl(k).c_str());
  std::printf("\n// local memory: %lld bytes; private elements/work-item: "
              "%lld\n",
              static_cast<long long>(k.local_mem_bytes()),
              static_cast<long long>(k.private_scalars()));
  return 0;
}
