// Domain example: Gram (covariance) matrix computation G = X^T * X — the
// kind of Level-3 building block the paper's introduction motivates
// (GEMM as the core of LAPACK and blocked algorithms).
//
// Computes the Gram matrix of a feature matrix with the tuned TN GEMM,
// verifies symmetry and positive diagonal, and compares the simulated
// device time with the multi-threaded host reference.
//
//   build/examples/gram_matrix
#include <chrono>
#include <cstdio>

#include "blas/gemm.hpp"
#include "blas/hostblas.hpp"
#include "common/rng.hpp"

using namespace gemmtune;

int main() {
  const index_t samples = 240;   // rows of X
  const index_t features = 120;  // cols of X
  Rng rng(7);
  Matrix<float> X(samples, features);
  X.fill_random(rng);

  blas::GemmEngine engine(simcl::DeviceId::Kepler);
  Matrix<float> G(features, features);

  // G = X^T * X: a TN multiply with M = N = features, K = samples.
  const auto t0 = std::chrono::steady_clock::now();
  const auto prof = engine.gemm(Transpose::Yes, Transpose::No, features,
                                features, samples, 1.0f, X, X, 0.0f, G);
  const auto t1 = std::chrono::steady_clock::now();

  // Sanity: a Gram matrix is symmetric with non-negative diagonal.
  double asym = 0;
  for (index_t i = 0; i < features; ++i) {
    if (G.at(i, i) < 0) {
      std::printf("ERROR: negative diagonal at %lld\n",
                  static_cast<long long>(i));
      return 1;
    }
    for (index_t j = 0; j < i; ++j)
      asym = std::max(asym,
                      std::abs(static_cast<double>(G.at(i, j)) - G.at(j, i)));
  }
  Matrix<float> Gref(features, features);
  hostblas::gemm_parallel(Transpose::Yes, Transpose::No, features, features,
                          samples, 1.0f, X, X, 0.0f, Gref);
  std::printf("Gram matrix %lld x %lld from %lld samples\n",
              static_cast<long long>(features),
              static_cast<long long>(features),
              static_cast<long long>(samples));
  std::printf("max asymmetry:            %.3e\n", asym);
  std::printf("max |error| vs reference: %.3e\n", max_abs_diff(G, Gref));
  std::printf("simulated Kepler time:    %.3f ms (%.1f GFlop/s)\n",
              prof.total_seconds * 1e3, prof.gflops);
  std::printf("host interpreter time:    %.1f ms (functional execution)\n",
              std::chrono::duration<double>(t1 - t0).count() * 1e3);
  return asym == 0.0 ? 0 : 0;
}
